(* Batched ingestion equivalence: [feed_batch] must be observably
   equivalent to sequential [process] on every engine.

   Observable state = matured id sets at every batch boundary, alive
   counts, and the exact per-query accumulated weights ([alive_snapshot]).
   Work counters are compared too: scan-style engines must do exactly the
   same work (their batch paths only reorder loops), while the DT engine's
   aggregated cursor may only ever do LESS work (node updates, heap ops)
   than the per-element path — never more.

   Two layers:
   - a qcheck property over random streams with random batch cut points
     and interleaved terminations, for all five engines (+ eager DT);
   - pinned-seed regression runs through the Scenario driver comparing
     batch sizes 1/64/1024 per engine and across engines. *)

open Rts_core
open Rts_workload
module Prng = Rts_util.Prng
module Metrics = Rts_obs.Metrics

let engines_for dim =
  List.concat
    [
      [
        ("baseline", fun () -> Baseline_engine.make ~dim);
        ("dt", fun () -> Dt_engine.make ~dim);
        ("dt-eager", fun () -> Dt_engine.make_eager ~dim);
      ];
      (if dim <= 3 then [ ("r-tree", fun () -> Rtree_engine.make ~dim) ] else []);
      (if dim = 1 then [ ("interval-tree", fun () -> Stab1d_engine.make ()) ] else []);
      (if dim = 2 then [ ("seg-intv", fun () -> Stab2d_engine.make ()) ] else []);
    ]

let is_dt name = name = "dt" || name = "dt-eager"

(* Counters whose values must match exactly between the sequential and the
   batched run of the SAME engine. Work counters are excluded for the DT
   engine (compared separately, with <=); rebuild/trees are
   timing-sensitive (batch defers rebuild checks to the batch boundary)
   and excluded as well. *)
let exact_counters = [ "elements_total"; "registered_total"; "terminated_total"; "matured_total" ]

let dt_work_counters = [ "dt_node_updates_total"; "dt_heap_ops_total" ]

let counter s name = Metrics.counter_value s name

(* ---- one randomized episode -------------------------------------- *)

type episode_cfg = {
  seed : int;
  dim : int;
  m : int; (* initial queries *)
  domain : int;
  max_weight : int;
  max_tau : int;
  n_elements : int;
  p_term : float; (* per-boundary probability of terminating one query *)
}

let gen_query rng ~dim ~domain ~max_tau ~id =
  let bounds =
    Array.init dim (fun _ ->
        let a = float_of_int (Prng.int rng domain) in
        (a, a +. 1. +. float_of_int (Prng.int rng domain)))
  in
  { Types.id; rect = Types.rect_make bounds; threshold = 1 + Prng.int rng max_tau }

let gen_elem rng ~dim ~domain ~max_weight =
  {
    Types.value = Array.init dim (fun _ -> float_of_int (Prng.int rng (domain + 4)));
    weight = 1 + Prng.int rng max_weight;
  }

(* Cut [n] elements into random segments of length 0..13 (empty batches
   are legal and must be no-ops). *)
let gen_cuts rng n =
  let segs = ref [] and used = ref 0 in
  while !used < n do
    let len = min (n - !used) (Prng.int rng 14) in
    segs := len :: !segs;
    used := !used + len;
    if len = 0 && Prng.bernoulli rng 0.7 then used := !used (* keep occasional empties rare *)
  done;
  List.rev !segs

let snapshot_str snap =
  String.concat ";"
    (List.map
       (fun ((q : Types.query), w) -> Printf.sprintf "%d:%d" q.id w)
       snap)

let episode cfg =
  let rng = Prng.create ~seed:cfg.seed in
  let queries = Array.init cfg.m (fun id -> gen_query rng ~dim:cfg.dim ~domain:cfg.domain ~max_tau:cfg.max_tau ~id) in
  let elems =
    Array.init cfg.n_elements (fun _ -> gen_elem rng ~dim:cfg.dim ~domain:cfg.domain ~max_weight:cfg.max_weight)
  in
  let cuts = gen_cuts rng cfg.n_elements in
  (* Pre-draw the termination choices so both runs see identical streams:
     at boundary i, optionally terminate the k-th (by position) alive id. *)
  let term_draws =
    List.map (fun _ -> if Prng.bernoulli rng cfg.p_term then Some (Prng.int rng 1_000_000) else None) cuts
  in
  List.iter
    (fun (name, make) ->
      let seq = (make () : Engine.t) and bat = (make () : Engine.t) in
      seq.register_batch (Array.to_list queries);
      bat.register_batch (Array.to_list queries);
      let alive = ref (Array.to_list (Array.map (fun (q : Types.query) -> q.id) queries)) in
      let off = ref 0 in
      List.iteri
        (fun bi (len, draw) ->
          (* identical termination on both engines *)
          (match draw with
          | Some k when !alive <> [] ->
              let v = List.nth !alive (k mod List.length !alive) in
              alive := List.filter (fun i -> i <> v) !alive;
              seq.terminate v;
              bat.terminate v
          | _ -> ());
          let seg = Array.sub elems !off len in
          off := !off + len;
          (* sequential reference: process one by one, collect the window *)
          let seq_matured =
            Engine.sort_matured
              (Array.fold_left (fun acc e -> List.rev_append (seq.process e) acc) [] seg)
          in
          let bat_matured = bat.feed_batch seg in
          if seq_matured <> bat_matured then
            Alcotest.failf "seed %d %s batch %d: matured seq=[%s] batch=[%s]" cfg.seed name bi
              (String.concat ";" (List.map string_of_int seq_matured))
              (String.concat ";" (List.map string_of_int bat_matured));
          alive := List.filter (fun i -> not (List.mem i seq_matured)) !alive;
          if seq.alive () <> bat.alive () then
            Alcotest.failf "seed %d %s batch %d: alive seq=%d batch=%d" cfg.seed name bi
              (seq.alive ()) (bat.alive ());
          let ss = seq.alive_snapshot () and bs = bat.alive_snapshot () in
          if snapshot_str ss <> snapshot_str bs then
            Alcotest.failf "seed %d %s batch %d: snapshot seq=[%s] batch=[%s]" cfg.seed name bi
              (snapshot_str ss) (snapshot_str bs))
        (List.combine cuts term_draws);
      (* ---- work-counter discipline ---- *)
      let sm = seq.metrics () and bm = bat.metrics () in
      List.iter
        (fun c ->
          if counter sm c <> counter bm c then
            Alcotest.failf "seed %d %s: counter %s seq=%d batch=%d" cfg.seed name c (counter sm c)
              (counter bm c))
        exact_counters;
      if is_dt name then begin
        (* Only [dt_node_updates_total <= sequential] is a theorem, and
           only on an unchanged tree: aggregation merges bumps on the same
           paths. Deferred rebuild checks (batch boundaries instead of per
           element) can keep a stale, larger tree alive through a batch;
           and heap-op/signal counts are order-sensitive (a round that
           ends earlier under the sorted order halves lambda earlier). The
           maturity-heavy 1D case for BOTH counters is pinned by the
           deterministic Scenario regression below and gated in CI by the
           perf budgets. *)
        if counter sm "rebuilds_total" = 0 && counter bm "rebuilds_total" = 0 && cfg.dim = 1 then begin
          let c = "dt_node_updates_total" in
          if counter bm c > counter sm c then
            Alcotest.failf "seed %d %s: work counter %s increased: seq=%d batch=%d" cfg.seed name
              c (counter sm c) (counter bm c)
        end
      end
      else if counter sm "scan_updates_total" <> counter bm "scan_updates_total" then
        Alcotest.failf "seed %d %s: scan_updates seq=%d batch=%d" cfg.seed name
          (counter sm "scan_updates_total")
          (counter bm "scan_updates_total"))
    (engines_for cfg.dim)

(* ---- qcheck property --------------------------------------------- *)

let cfg_gen =
  QCheck.Gen.(
    let* seed = int_range 1 1_000_000 in
    let* dim = int_range 1 2 in
    let* m = int_range 1 60 in
    let* domain = int_range 2 24 in
    let* max_weight = int_range 1 50 in
    let* max_tau = int_range 1 600 in
    let* n_elements = int_range 0 300 in
    let* p_term = float_bound_inclusive 0.15 in
    return { seed; dim; m; domain; max_weight; max_tau; n_elements; p_term })

let prop_feed_batch_equivalence =
  QCheck.Test.make ~count:(Qcheck_env.count 60)
    ~name:"feed_batch = sequential process (matured sets, weights, counters)"
    (QCheck.make
       ~print:(fun c ->
         Printf.sprintf "seed=%d dim=%d m=%d domain=%d maxw=%d maxtau=%d n=%d pterm=%.2f" c.seed
           c.dim c.m c.domain c.max_weight c.max_tau c.n_elements c.p_term)
       cfg_gen)
    (fun cfg ->
      episode cfg;
      true)

(* ---- edge cases --------------------------------------------------- *)

let test_empty_and_singleton () =
  List.iter
    (fun dim ->
      List.iter
        (fun (name, make) ->
          let e = (make () : Engine.t) in
          let rng = Prng.create ~seed:7 in
          e.register_batch
            (List.init 5 (fun id -> gen_query rng ~dim ~domain:6 ~max_tau:50 ~id));
          Alcotest.(check (list int)) (name ^ " empty batch") [] (e.feed_batch [||]);
          let el = gen_elem rng ~dim ~domain:6 ~max_weight:3 in
          let twin = (make () : Engine.t) in
          let rng2 = Prng.create ~seed:7 in
          twin.register_batch
            (List.init 5 (fun id -> gen_query rng2 ~dim ~domain:6 ~max_tau:50 ~id));
          Alcotest.(check (list int))
            (name ^ " singleton batch = process")
            (twin.process el) (e.feed_batch [| el |]))
        (engines_for dim))
    [ 1; 2 ]

(* ---- pinned-seed Scenario regressions ----------------------------- *)

let ids_of log = List.sort compare (List.map snd log)

let factories_for dim =
  match dim with
  | 1 ->
      [
        ("baseline", fun ~dim -> Baseline_engine.make ~dim);
        ("dt", fun ~dim -> Dt_engine.make ~dim);
        ("interval-tree", fun ~dim:_ -> Stab1d_engine.make ());
      ]
  | _ ->
      [
        ("baseline", fun ~dim -> Baseline_engine.make ~dim);
        ("dt", fun ~dim -> Dt_engine.make ~dim);
        ("seg-intv", fun ~dim:_ -> Stab2d_engine.make ());
        ("r-tree", fun ~dim -> Rtree_engine.make ~dim);
      ]

(* Batch-size invariance of the matured id multiset holds for STATIC
   workloads (all control ops before the stream): elements within a window
   are an unordered multiset, so only maturity timestamps coarsen. Dynamic
   modes coarsen registration/termination timing to batch boundaries,
   which legitimately changes interleaving-sensitive outcomes (a query
   whose termination deadline falls inside a window is terminated before
   any of the window's elements) — for those, the invariant is that every
   ENGINE agrees verbatim on the same batched stream, checked below. *)
let scenario_static_invariance ~dim ~seed () =
  let base =
    {
      Scenario.default with
      Scenario.dim;
      seed;
      initial_queries = 400;
      tau = 4_000;
      mode = Scenario.Static;
      with_terminations = false;
      max_elements = 6_000;
      chunk = 512;
    }
  in
  List.iter
    (fun (name, factory) ->
      let r1 = Scenario.run base factory in
      let r64 = Scenario.run { base with Scenario.batch = 64 } factory in
      Alcotest.(check (list int))
        (Printf.sprintf "%s d=%d: batch=64 matures the same ids as batch=1" name dim)
        (ids_of r1.Scenario.maturity_log)
        (ids_of r64.Scenario.maturity_log);
      Alcotest.(check int)
        (Printf.sprintf "%s d=%d: batch=64 same element count" name dim)
        r1.Scenario.elements r64.Scenario.elements)
    (factories_for dim)

(* Dynamic workload: all engines see the identical batched op stream, so
   their maturity logs — timestamps included — must agree verbatim. *)
let scenario_cross_engine ~dim ~seed () =
  let cfg =
    {
      Scenario.default with
      Scenario.dim;
      seed;
      initial_queries = 400;
      tau = 4_000;
      mode = Scenario.Fixed_load;
      max_elements = 6_000;
      chunk = 512;
      batch = 64;
    }
  in
  let reference = ref None in
  List.iter
    (fun (name, factory) ->
      let r = Scenario.run cfg factory in
      match !reference with
      | None -> reference := Some (name, r.Scenario.maturity_log)
      | Some (ref_name, ref_log) ->
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "%s = %s maturity log at batch=64 (d=%d)" name ref_name dim)
            ref_log r.Scenario.maturity_log)
    (factories_for dim)

(* Pinned-seed DT counter regression: deterministic 1D maturity-heavy
   static run — batching must not increase the protocol work counters
   (this is the CI acceptance property behind the perf budgets). *)
let test_dt_counters_pinned () =
  let base =
    {
      Scenario.default with
      Scenario.dim = 1;
      seed = 42;
      initial_queries = 400;
      tau = 4_000;
      mode = Scenario.Static;
      with_terminations = false;
      max_elements = 12_000;
      chunk = 1024;
    }
  in
  let r1 = Scenario.run base (fun ~dim -> Dt_engine.make ~dim) in
  let r256 =
    Scenario.run { base with Scenario.batch = 256 } (fun ~dim -> Dt_engine.make ~dim)
  in
  Alcotest.(check (list int))
    "dt: batch=256 matures the same ids as batch=1"
    (ids_of r1.Scenario.maturity_log)
    (ids_of r256.Scenario.maturity_log);
  List.iter
    (fun c ->
      let seq = Metrics.counter_value r1.Scenario.final_metrics c
      and bat = Metrics.counter_value r256.Scenario.final_metrics c in
      if bat > seq then
        Alcotest.failf "dt pinned: %s increased under batching: seq=%d batch=%d" c seq bat)
    dt_work_counters

let test_scenario_batches () =
  scenario_static_invariance ~dim:1 ~seed:2024 ();
  scenario_static_invariance ~dim:2 ~seed:31 ();
  scenario_cross_engine ~dim:1 ~seed:2024 ();
  scenario_cross_engine ~dim:2 ~seed:31 ()

let () =
  Alcotest.run "feed_batch"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_feed_batch_equivalence;
          Alcotest.test_case "empty and singleton batches" `Quick test_empty_and_singleton;
          Alcotest.test_case "scenario: batch sizes and engines agree" `Slow
            test_scenario_batches;
          Alcotest.test_case "pinned seed: dt work counters never increase" `Quick
            test_dt_counters_pinned;
        ] );
    ]
