(* Shared_tracking: many DT instances over shared counters. Exactness
   against a scalar model under random schedules, signal budget, shared
   counter semantics (offsets: only post-registration increments count),
   and the heap-sharing behaviour that makes increments cheap. *)

module St = Rts_dt.Shared_tracking
module Prng = Rts_util.Prng

let test_single_instance_exact () =
  let t = St.create ~counters:4 in
  let inst = St.register t ~watch:[ 0; 2 ] ~threshold:10 in
  Alcotest.(check int) "fanout" 2 (St.fanout inst);
  Alcotest.(check (list bool)) "no fire on unwatched" []
    (List.map St.is_mature (St.increment t 1 ~by:100));
  ignore (St.increment t 3 ~by:100);
  Alcotest.(check int) "progress 0" 0 (St.progress t inst);
  ignore (St.increment t 0 ~by:4);
  ignore (St.increment t 2 ~by:5);
  Alcotest.(check int) "progress 9" 9 (St.progress t inst);
  Alcotest.(check bool) "live" true (St.is_live inst);
  let matured = St.increment t 0 ~by:1 in
  Alcotest.(check int) "matures exactly at 10" 1 (List.length matured);
  Alcotest.(check bool) "mature" true (St.is_mature inst);
  Alcotest.(check int) "progress caps at threshold" 10 (St.progress t inst)

let test_registration_offset () =
  (* Increments before registration must not count. *)
  let t = St.create ~counters:1 in
  ignore (St.increment t 0 ~by:1_000);
  let inst = St.register t ~watch:[ 0 ] ~threshold:5 in
  Alcotest.(check int) "starts at zero" 0 (St.progress t inst);
  Alcotest.(check int) "no immediate fire" 0 (List.length (St.increment t 0 ~by:4));
  Alcotest.(check int) "fires at 5" 1 (List.length (St.increment t 0 ~by:1))

let test_cancel () =
  let t = St.create ~counters:2 in
  let a = St.register t ~watch:[ 0 ] ~threshold:3 in
  let b = St.register t ~watch:[ 0 ] ~threshold:3 in
  St.cancel t a;
  Alcotest.(check int) "live count" 1 (St.live_count t);
  let matured = St.increment t 0 ~by:10 in
  Alcotest.(check bool) "only b fires" true
    (List.length matured = 1 && St.is_mature b && not (St.is_mature a));
  Alcotest.check_raises "double cancel"
    (Invalid_argument "Shared_tracking.cancel: instance not live") (fun () -> St.cancel t a);
  Alcotest.check_raises "progress of cancelled"
    (Invalid_argument "Shared_tracking.progress: instance cancelled") (fun () ->
      ignore (St.progress t a))

let test_validation () =
  Alcotest.check_raises "no counters" (Invalid_argument "Shared_tracking.create: counters < 1")
    (fun () -> ignore (St.create ~counters:0));
  let t = St.create ~counters:2 in
  Alcotest.check_raises "empty watch"
    (Invalid_argument "Shared_tracking.register: empty watch set") (fun () ->
      ignore (St.register t ~watch:[] ~threshold:1));
  Alcotest.check_raises "bad index"
    (Invalid_argument "Shared_tracking.register: bad counter index") (fun () ->
      ignore (St.register t ~watch:[ 2 ] ~threshold:1));
  Alcotest.check_raises "duplicate counter"
    (Invalid_argument "Shared_tracking.register: duplicate counter") (fun () ->
      ignore (St.register t ~watch:[ 0; 0 ] ~threshold:1));
  Alcotest.check_raises "bad threshold"
    (Invalid_argument "Shared_tracking.register: threshold < 1") (fun () ->
      ignore (St.register t ~watch:[ 0 ] ~threshold:0));
  Alcotest.check_raises "bad increment"
    (Invalid_argument "Shared_tracking.increment: by < 1") (fun () ->
      ignore (St.increment t 0 ~by:0))

let test_many_instances_model () =
  (* 200 instances over 16 shared counters; random weighted increments;
     diff maturity against a per-instance scalar model. *)
  let rng = Prng.create ~seed:5 in
  let t = St.create ~counters:16 in
  let insts =
    List.init 200 (fun _ ->
        let h = 1 + Prng.int rng 6 in
        let all = Array.init 16 (fun i -> i) in
        Prng.shuffle rng all;
        let watch = Array.to_list (Array.sub all 0 h) in
        let threshold = 1 + Prng.int rng 500 in
        let inst = St.register t ~watch ~threshold in
        (inst, watch, threshold, ref 0, ref false))
  in
  for step = 1 to 3000 do
    let i = Prng.int rng 16 in
    let by = 1 + Prng.int rng 10 in
    let matured = St.increment t i ~by in
    List.iter
      (fun (inst, watch, threshold, acc, dead) ->
        if (not !dead) && List.mem i watch then begin
          acc := !acc + by;
          if !acc >= threshold then begin
            dead := true;
            Alcotest.(check bool)
              (Printf.sprintf "step %d: model fire matches" step)
              true
              (List.exists (fun m -> m == inst) matured)
          end
        end)
      insts;
    List.iter
      (fun m -> Alcotest.(check bool) "reported ones are model-dead" true
          (List.exists (fun (inst, _, _, _, dead) -> inst == m && !dead) insts))
      matured
  done;
  (* survivors: progress must equal the model *)
  List.iter
    (fun (inst, _, _, acc, dead) ->
      if not !dead then
        Alcotest.(check int) "surviving progress" !acc (St.progress t inst))
    insts

let test_signal_budget () =
  (* Signals across all instances stay within O(sum h log tau). *)
  let rng = Prng.create ~seed:7 in
  let t = St.create ~counters:8 in
  let tau = 20_000 in
  let insts = List.init 100 (fun _ -> St.register t ~watch:[ Prng.int rng 8 ] ~threshold:tau) in
  ignore insts;
  (* drive everything to maturity *)
  let live = ref (St.live_count t) in
  while !live > 0 do
    let matured = St.increment t (Prng.int rng 8) ~by:(1 + Prng.int rng 20) in
    live := !live - List.length matured
  done;
  let log2 x = log (float_of_int x) /. log 2. in
  let budget = int_of_float (100. *. 8. *. (log2 tau +. 2.)) in
  Alcotest.(check bool)
    (Printf.sprintf "signals %d <= budget %d" (St.signals t) budget)
    true
    (St.signals t <= budget)

let test_increment_cheap_when_quiet () =
  (* With large thresholds and tiny increments, most increments must not
     deliver any signal at all (the whole point of the slack heaps):
     signals stay far below the number of increments. *)
  let t = St.create ~counters:1 in
  for _ = 1 to 50 do
    ignore (St.register t ~watch:[ 0 ] ~threshold:1_000_000)
  done;
  for _ = 1 to 10_000 do
    ignore (St.increment t 0 ~by:1)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "signals %d << 50 x 10000 naive" (St.signals t))
    true
    (St.signals t < 2_000)

let test_cancel_mid_round () =
  (* Cancel an instance after it has consumed several DT rounds; the shared
     counters keep serving the others exactly. *)
  let t = St.create ~counters:4 in
  let a = St.register t ~watch:[ 0; 1; 2; 3 ] ~threshold:100_000 in
  let b = St.register t ~watch:[ 0; 1 ] ~threshold:500 in
  for i = 0 to 199 do
    ignore (St.increment t (i mod 4) ~by:100)
  done;
  (* a has seen 20_000; b has seen the weight on counters 0 and 1 = 10_000,
     so b matured long ago *)
  Alcotest.(check bool) "b matured" true (St.is_mature b);
  Alcotest.(check int) "a progress" 20_000 (St.progress t a);
  St.cancel t a;
  let c = St.register t ~watch:[ 0 ] ~threshold:50 in
  let matured = St.increment t 0 ~by:60 in
  Alcotest.(check int) "only c fires" 1 (List.length matured);
  Alcotest.(check bool) "c is the one" true (St.is_mature c)

let test_huge_weight_overshoot () =
  let t = St.create ~counters:2 in
  let a = St.register t ~watch:[ 0; 1 ] ~threshold:1_000_000 in
  let matured = St.increment t 0 ~by:50_000_000 in
  Alcotest.(check bool) "immediate maturity" true
    (List.length matured = 1 && St.is_mature a)

(* Interleaved register/cancel while network faults are active: every
   shared-tracking instance is cross-checked against two dedicated DT
   instances — a classic synchronous one and a networked one running
   over a lossy (drop/dup/reorder) transport. All three must mature on
   the same shared increment. *)
let test_interleaved_churn_under_faults () =
  let module Dt = Rts_dt.Distributed_tracking in
  let module Nt = Rts_dt.Net_tracking in
  let module Net_fault = Rts_net.Net_fault in
  (* [List.find_index] only exists from OCaml 5.1; CI also builds 4.14. *)
  let find_index p l =
    let rec go i = function
      | [] -> None
      | x :: rest -> if p x then Some i else go (i + 1) rest
    in
    go 0 l
  in
  let faults =
    {
      Net_fault.none with
      Net_fault.drop = 0.25;
      duplicate = 0.15;
      reorder = 0.3;
      delay_max = 4;
    }
  in
  List.iter
    (fun seed ->
      let rng = Prng.create ~seed in
      let counters = 6 in
      let t = St.create ~counters in
      (* (st_inst, watch, classic, networked) for each live instance *)
      let shadows = ref [] in
      let next_id = ref 0 in
      let register () =
        let h = 1 + Prng.int rng 4 in
        let all = Array.init counters (fun i -> i) in
        Prng.shuffle rng all;
        let watch = Array.to_list (Array.sub all 0 h) in
        let threshold = 20 + Prng.int rng 400 in
        let inst = St.register t ~watch ~threshold in
        let classic = Dt.create ~h ~tau:threshold in
        let net =
          Nt.create
            ~config:{ Nt.default with Nt.faults; seed = seed + !next_id }
            ~h ~tau:threshold ()
        in
        incr next_id;
        shadows := (inst, watch, classic, net) :: !shadows
      in
      for _ = 1 to 4 do register () done;
      for step = 1 to 600 do
        (* Interleave registrations and cancellations with the stream. *)
        if Prng.bernoulli rng 0.10 then register ();
        (if Prng.bernoulli rng 0.05 then
           match !shadows with
           | (inst, _, _, _) :: rest when St.is_live inst ->
               St.cancel t inst;
               shadows := rest
           | _ -> ());
        let c = Prng.int rng counters in
        let by = 1 + Prng.int rng 8 in
        let matured = St.increment t c ~by in
        shadows :=
          List.filter
            (fun (inst, watch, classic, net) ->
              match find_index (fun w -> w = c) watch with
              | None -> true
              | Some site ->
                  let m_classic = Dt.increment classic ~site ~by in
                  let m_net = Nt.increment net ~site ~by in
                  let m_shared = List.exists (fun m -> m == inst) matured in
                  Alcotest.(check bool)
                    (Printf.sprintf
                       "step %d seed %d: shared/classic/net agree (%b/%b/%b)" step seed
                       m_shared m_classic m_net)
                    true
                    (m_shared = m_classic && m_classic = m_net);
                  Alcotest.(check bool)
                    (Printf.sprintf "step %d: net never early" step)
                    true
                    (Nt.estimate net <= Nt.total net);
                  not m_shared)
            !shadows
      done;
      (* Surviving triples agree on accumulated progress too. *)
      List.iter
        (fun (inst, _, classic, net) ->
          if St.is_live inst then begin
            Alcotest.(check int) "classic total = shared progress" (St.progress t inst)
              (Dt.total classic);
            Alcotest.(check int) "net total = shared progress" (St.progress t inst)
              (Nt.total net)
          end)
        !shadows)
    [ 3; 11; 42 ]

let prop_exactness =
  QCheck.Test.make ~count:100 ~name:"random instances over shared counters are exact"
    QCheck.(triple small_int (int_range 1 12) (int_range 1 400))
    (fun (seed, counters, max_tau) ->
      let rng = Prng.create ~seed in
      let t = St.create ~counters in
      let model = ref [] in
      let ok = ref true in
      for _ = 1 to 400 do
        if Prng.bernoulli rng 0.15 then begin
          let h = 1 + Prng.int rng counters in
          let all = Array.init counters (fun i -> i) in
          Prng.shuffle rng all;
          let watch = Array.to_list (Array.sub all 0 h) in
          let inst = St.register t ~watch ~threshold:(1 + Prng.int rng max_tau) in
          model := (inst, watch, ref 0) :: !model
        end;
        let i = Prng.int rng counters in
        let by = 1 + Prng.int rng 8 in
        let matured = St.increment t i ~by in
        let expected = ref [] in
        model :=
          List.filter
            (fun (inst, watch, acc) ->
              if List.mem i watch then acc := !acc + by;
              if !acc >= St.threshold inst then begin
                expected := inst :: !expected;
                false
              end
              else true)
            !model;
        let ids l = List.sort compare (List.map (fun m -> St.fanout m + St.threshold m) l) in
        ignore ids;
        if List.length matured <> List.length !expected then ok := false;
        List.iter
          (fun m -> if not (List.exists (fun e -> e == m) !expected) then ok := false)
          matured
      done;
      !ok)

let () =
  Alcotest.run "shared_tracking"
    [
      ( "unit",
        [
          Alcotest.test_case "single instance exact" `Quick test_single_instance_exact;
          Alcotest.test_case "registration offset" `Quick test_registration_offset;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "200 instances vs model" `Quick test_many_instances_model;
          Alcotest.test_case "signal budget" `Quick test_signal_budget;
          Alcotest.test_case "quiet increments are cheap" `Quick test_increment_cheap_when_quiet;
          Alcotest.test_case "cancel mid-round" `Quick test_cancel_mid_round;
          Alcotest.test_case "huge weight overshoot" `Quick test_huge_weight_overshoot;
          Alcotest.test_case "interleaved churn under net faults" `Quick
            test_interleaved_churn_under_faults;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_exactness ]);
    ]
