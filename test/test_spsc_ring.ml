(* Spsc_ring: capacity rounding, FIFO order, full/empty boundaries, a
   randomized model check against Queue, and — on the domains leg — a
   true concurrent producer/consumer stress with index wraparound. *)

module Spsc_ring = Rts_shard.Spsc_ring
module Executor = Rts_shard.Executor

let test_capacity_rounding () =
  List.iter
    (fun (req, expect) ->
      let r = Spsc_ring.create ~capacity:req in
      Alcotest.(check int)
        (Printf.sprintf "capacity %d rounds to %d" req expect)
        expect (Spsc_ring.capacity r))
    [ (1, 1); (2, 2); (3, 4); (4, 4); (5, 8); (15, 16); (16, 16); (17, 32) ];
  (match Spsc_ring.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected");
  match Spsc_ring.create ~capacity:(-3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative capacity must be rejected"

let test_fifo_and_boundaries () =
  let r = Spsc_ring.create ~capacity:4 in
  Alcotest.(check bool) "fresh ring is empty" true (Spsc_ring.is_empty r);
  Alcotest.(check (option int)) "pop on empty" None (Spsc_ring.try_pop r);
  List.iter (fun i -> Alcotest.(check bool) "push" true (Spsc_ring.try_push r i)) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "full length" 4 (Spsc_ring.length r);
  Alcotest.(check bool) "push on full fails" false (Spsc_ring.try_push r 5);
  Alcotest.(check (option int)) "FIFO head" (Some 1) (Spsc_ring.try_pop r);
  Alcotest.(check bool) "room again after pop" true (Spsc_ring.try_push r 5);
  List.iter
    (fun expect ->
      Alcotest.(check (option int)) "FIFO order" (Some expect) (Spsc_ring.try_pop r))
    [ 2; 3; 4; 5 ];
  Alcotest.(check bool) "drained" true (Spsc_ring.is_empty r)

let test_sequential_wraparound () =
  (* march the head/tail indices far past the capacity several times
     over, asserting FIFO at every step *)
  let r = Spsc_ring.create ~capacity:8 in
  let next_in = ref 0 and next_out = ref 0 in
  for round = 1 to 100 do
    let burst = 1 + (round mod 8) in
    for _ = 1 to burst do
      if Spsc_ring.try_push r !next_in then incr next_in
    done;
    for _ = 1 to burst do
      match Spsc_ring.try_pop r with
      | Some v ->
          Alcotest.(check int) "wraparound keeps FIFO" !next_out v;
          incr next_out
      | None -> ()
    done
  done;
  Alcotest.(check bool) "indices marched well past capacity" true (!next_in > 100);
  Alcotest.(check int) "conservation" !next_in (!next_out + Spsc_ring.length r)

(* Randomized model check: a Spsc_ring mirrors a Queue under any
   push/pop interleaving (single-threaded — the SPSC contract's
   degenerate case). *)
let prop_model =
  QCheck.Test.make
    ~count:(Qcheck_env.count 300)
    ~name:"spsc_ring = bounded queue (model)"
    QCheck.(pair (int_range 1 16) (small_list (option small_nat)))
    (fun (cap, script) ->
      let r = Spsc_ring.create ~capacity:cap in
      let q = Queue.create () in
      let cap = Spsc_ring.capacity r in
      List.for_all
        (fun step ->
          match step with
          | Some v ->
              let pushed = Spsc_ring.try_push r v in
              let fits = Queue.length q < cap in
              if fits then Queue.add v q;
              pushed = fits && Spsc_ring.length r = Queue.length q
          | None ->
              let popped = Spsc_ring.try_pop r in
              let expected = Queue.take_opt q in
              popped = expected && Spsc_ring.length r = Queue.length q)
        script)

(* Concurrent stress: producer on a worker domain, consumer on the
   caller, tiny capacity so the indices wrap thousands of times and
   every slot is reused under real parallelism. Runs only where the
   build has a domains backend: under the sequential executor [post]
   runs inline, so a producer spinning on [try_push] against a full
   ring would never yield to the consumer. *)
let test_concurrent_wraparound () =
  if not Executor.domains_available then ()
  else begin
    (* this file must also build on 4.14, where [Domain] does not
       exist, so no cpu_relax; and on a single-core box two pure
       busy-spinners only hand off at OS timeslice granularity, so a
       blocked side briefly sleeps to yield the core *)
    let relax () = Unix.sleepf 0.0001 in
    let items = 20_000 in
    let r = Spsc_ring.create ~capacity:8 in
    let ex = Executor.create ~kind:Executor.Domains ~shards:1 () in
    Executor.post ex 0 (fun () ->
        for i = 0 to items - 1 do
          while not (Spsc_ring.try_push r i) do
            relax ()
          done
        done);
    let expected = ref 0 in
    let ok = ref true in
    while !expected < items do
      match Spsc_ring.try_pop r with
      | Some v ->
          if v <> !expected then ok := false;
          incr expected
      | None -> relax ()
    done;
    Executor.barrier ex;
    Executor.close ex;
    Alcotest.(check bool) "every item arrived in order" true !ok;
    Alcotest.(check bool) "ring drained" true (Spsc_ring.is_empty r)
  end

let () =
  Alcotest.run "spsc_ring"
    [
      ( "units",
        [
          Alcotest.test_case "capacity rounding" `Quick test_capacity_rounding;
          Alcotest.test_case "FIFO and boundaries" `Quick test_fifo_and_boundaries;
          Alcotest.test_case "sequential wraparound" `Quick test_sequential_wraparound;
        ] );
      ("model", [ QCheck_alcotest.to_alcotest prop_model ]);
      ( "concurrent",
        [ Alcotest.test_case "producer/consumer wraparound" `Quick test_concurrent_wraparound ]
      );
    ]
