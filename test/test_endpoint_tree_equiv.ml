(* Differential equivalence: the Bigarray Endpoint_tree vs the frozen
   boxed reference build (endpoint_tree_ref.ml).

   The Bigarray rewrite claims to be operation-for-operation equivalent
   to the boxed implementation it replaced: same maturity log (order
   included, because heap layouts and iteration orders were preserved
   exactly), same per-query weights, same work counters. This property
   drives both builds through identical random op sequences — single
   elements, sorted batches, cursor feeds flushed at random cut points,
   removals — over random 1D/2D query sets, and checks the observable
   state after every operation.

   The suite also pins the headline allocation claim as a regression
   test: feeding the DT engine 1024-element batches allocates zero
   minor-heap words per element (native code only — bytecode boxes
   local floats by design). This is the same invariant CI gates through
   tools/alloc_budgets.json; keeping a copy in the test suite means a
   regression fails `dune runtest` directly, without running the bench. *)

open Rts_core
module ET = Endpoint_tree
module Ref = Endpoint_tree_ref
module Prng = Rts_util.Prng
module Alloc = Rts_obs.Alloc

(* ---- random episode ---- *)

let gen_batch rng ~dim ~m ~domain =
  List.init m (fun id ->
      let bounds =
        Array.init dim (fun _ ->
            let a = float_of_int (Prng.int rng domain) in
            (a, a +. 1. +. float_of_int (Prng.int rng domain)))
      in
      let remaining = 1 + Prng.int rng 60 in
      ({ Types.id; rect = Types.rect_make bounds; threshold = remaining }, remaining))

let gen_elem rng ~dim ~domain =
  {
    Types.value = Array.init dim (fun _ -> float_of_int (Prng.int rng (domain + 4)));
    weight = 1 + Prng.int rng 20;
  }

let check_sync ~seed ~step a b log_a log_b =
  if !log_a <> !log_b then
    Alcotest.failf "seed %d step %d: maturity logs diverged: bigarray=[%s] ref=[%s]" seed step
      (String.concat ";" (List.map string_of_int (List.rev !log_a)))
      (String.concat ";" (List.map string_of_int (List.rev !log_b)));
  if ET.alive_count a <> Ref.alive_count b then
    Alcotest.failf "seed %d step %d: alive %d vs %d" seed step (ET.alive_count a)
      (Ref.alive_count b)

let check_final ~seed ~m a b =
  for id = 0 to m - 1 do
    let alive_a = ET.is_alive a id and alive_b = Ref.is_alive b id in
    if alive_a <> alive_b then
      Alcotest.failf "seed %d: query %d alive %b vs %b" seed id alive_a alive_b;
    if alive_a then begin
      if ET.current_weight a id <> Ref.current_weight b id then
        Alcotest.failf "seed %d: query %d weight %d vs %d" seed id (ET.current_weight a id)
          (Ref.current_weight b id);
      if ET.remaining a id <> Ref.remaining b id then
        Alcotest.failf "seed %d: query %d remaining %d vs %d" seed id (ET.remaining a id)
          (Ref.remaining b id);
      if ET.fanout a id <> Ref.fanout b id then
        Alcotest.failf "seed %d: query %d fanout %d vs %d" seed id (ET.fanout a id)
          (Ref.fanout b id)
    end
  done;
  (* alive_queries must agree as rebuild batches: same queries, same
     residual thresholds, same order (both fold the same Hashtbl layout
     and sort identically) *)
  let snap_a = List.map (fun (q, r) -> (q.Types.id, r)) (ET.alive_queries a) in
  let snap_b = List.map (fun (q, r) -> (q.Types.id, r)) (Ref.alive_queries b) in
  Alcotest.(check (list (pair int int))) (Printf.sprintf "seed %d: alive_queries" seed)
    (List.sort compare snap_b) (List.sort compare snap_a);
  (* exact work-counter equivalence: the rewrite may not add or remove
     protocol work, it only relocates the bytes *)
  let sa = ET.stats a and sb = Ref.stats b in
  let pairs =
    [
      ("elements", sa.ET.elements, sb.Ref.elements);
      ("node_updates", sa.ET.node_updates, sb.Ref.node_updates);
      ("signals", sa.ET.signals, sb.Ref.signals);
      ("round_ends", sa.ET.round_ends, sb.Ref.round_ends);
      ("heap_ops", sa.ET.heap_ops, sb.Ref.heap_ops);
    ]
  in
  List.iter
    (fun (name, va, vb) ->
      if va <> vb then Alcotest.failf "seed %d: stats.%s %d vs %d" seed name va vb)
    pairs;
  let spa = ET.space a and spb = Ref.space b in
  if spa.ET.tree_nodes <> spb.Ref.tree_nodes then
    Alcotest.failf "seed %d: tree_nodes %d vs %d" seed spa.ET.tree_nodes spb.Ref.tree_nodes;
  if spa.ET.live_entries <> spb.Ref.live_entries then
    Alcotest.failf "seed %d: live_entries %d vs %d" seed spa.ET.live_entries spb.Ref.live_entries

let episode seed =
  let rng = Prng.create ~seed in
  let dim = 1 + Prng.int rng 2 in
  let domain = 4 + Prng.int rng 40 in
  let m = Prng.int rng 40 in
  let eager = Prng.bernoulli rng 0.15 in
  let batch = gen_batch rng ~dim ~m ~domain in
  let log_a = ref [] and log_b = ref [] in
  let a = ET.build ~eager ~dim ~on_mature:(fun id -> log_a := id :: !log_a) batch in
  let b = Ref.build ~eager ~dim ~on_mature:(fun id -> log_b := id :: !log_b) batch in
  let steps = 30 + Prng.int rng 60 in
  for step = 1 to steps do
    (match Prng.int rng 10 with
    | 0 | 1 | 2 | 3 ->
        (* single element through the per-element entry point *)
        let e = gen_elem rng ~dim ~domain in
        ET.process a e;
        Ref.process b e
    | 4 | 5 | 6 ->
        (* whole-batch entry point (sort + cursor + flush inside) *)
        let n = 1 + Prng.int rng 200 in
        let elems = Array.init n (fun _ -> gen_elem rng ~dim ~domain) in
        ET.process_batch a elems;
        Ref.process_batch b elems
    | 7 | 8 ->
        (* cursor feed over one sorted copy, flushed at random cut
           points — both builds must coarsen identically at every cut *)
        let n = 1 + Prng.int rng 200 in
        let elems = ET.sort_batch (Array.init n (fun _ -> gen_elem rng ~dim ~domain)) in
        let cuts = Array.init n (fun _ -> Prng.bernoulli rng 0.1) in
        let ca = ET.cursor a and cb = Ref.cursor b in
        for i = 0 to n - 1 do
          ET.process_sorted ca elems.(i);
          Ref.process_sorted cb elems.(i);
          if cuts.(i) then begin
            ET.flush ca;
            Ref.flush cb
          end
        done;
        ET.flush ca;
        Ref.flush cb
    | _ ->
        if m > 0 then begin
          let id = Prng.int rng m in
          let alive_a = ET.is_alive a id and alive_b = Ref.is_alive b id in
          if alive_a <> alive_b then
            Alcotest.failf "seed %d step %d: query %d alive %b vs %b" seed step id alive_a
              alive_b;
          if alive_a then begin
            ET.remove a id;
            Ref.remove b id
          end
        end);
    check_sync ~seed ~step a b log_a log_b
  done;
  check_final ~seed ~m a b

let prop_equiv =
  QCheck.Test.make ~count:(Qcheck_env.count 60)
    ~name:"bigarray Endpoint_tree == boxed reference (ops, logs, counters)"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      episode seed;
      true)

(* ---- pinned allocation regression ---- *)

(* The CI bench gates allocated_words_per_element = 0 for the DT engine
   at every batch size (tools/alloc_budgets.json); this is the in-suite
   copy at batch 1024. Native only: bytecode has no float unboxing, so
   the zero-allocation property is not claimed there. *)
let test_dt_alloc_free_1024 () =
  match Sys.backend_type with
  | Sys.Bytecode | Sys.Other _ -> ()
  | Sys.Native ->
      let rng = Prng.create ~seed:7 in
      let e = Dt_engine.make ~dim:1 in
      for id = 0 to 49 do
        let a = float_of_int (Prng.int rng 1000) in
        let hi = a +. 1. +. float_of_int (Prng.int rng 1000) in
        e.Engine.register
          { Types.id; rect = Types.rect_make [| (a, hi) |]; threshold = max_int }
      done;
      let batch =
        Array.init 1024 (fun _ ->
            {
              Types.value = [| float_of_int (Prng.int rng 1100) |];
              weight = 1 + Prng.int rng 5;
            })
      in
      (* warm up: grows the engine's scratch buffers to the batch size
         and settles any lazy structure, then measure steady state *)
      ignore (e.Engine.feed_batch batch);
      Gc.full_major ();
      let words =
        Alloc.words_per_item ~runs:5 ~items:1024 (fun () ->
            ignore (e.Engine.feed_batch batch))
      in
      Alcotest.(check (float 0.0))
        "allocated words per element, DT feed_batch 1024" 0.0 words

let () =
  Alcotest.run "endpoint_tree_equiv"
    [
      ("equivalence", [ QCheck_alcotest.to_alcotest prop_equiv ]);
      ( "allocation",
        [ Alcotest.test_case "dt feed_batch 1024 allocates 0 words/element" `Quick
            test_dt_alloc_free_1024 ] );
    ]
