(* Boxed-array reference build of Endpoint_tree, frozen as an oracle.

   This module is a faithful copy of the lib/core/endpoint_tree.ml that
   shipped before the Bigarray rewrite: boxed OCaml arrays for
   jlo/jhi/left/right/counter, intrusive record edges, and per-node
   growable sigma-heap arrays. test_endpoint_tree_equiv.ml drives it and
   the production Bigarray build with identical operation sequences and
   asserts identical observable behaviour: same maturity log (order
   included), same per-query weights, same work counters. Do not
   "improve" this module — its value is that it does not change. *)

open Rts_core.Types

type stats = {
  mutable elements : int;
  mutable node_updates : int;
  mutable signals : int;
  mutable round_ends : int;
  mutable heap_ops : int;
}

(* One query's distributed-tracking state. [edges] are the (query, node)
   pairs of its canonical node set U_q: the "participants" of Section 4.
   [tree_tau] is the weight the query still needed when this tree was
   built; within a tree, W(q) is simply the sum of the canonical nodes'
   counters (all counters start at zero at build time and U_q tiles R_q). *)
type qstate = {
  query : query;
  tree_tau : int;
  mutable edges : edge array;
  mutable tmp_edges : edge list; (* build-time accumulator *)
  mutable lambda : int;
  mutable signals : int; (* signals received in the current round *)
  mutable direct : bool; (* endgame mode: remaining <= 6h *)
  mutable wknown : int; (* direct mode: coordinator's exact W(q) *)
  mutable alive : bool;
}

and edge = {
  owner : qstate;
  elvl : level; (* the last-dimension level owning the canonical node *)
  enode : int; (* node id within [elvl] *)
  mutable cbar : int; (* node counter acknowledged to the coordinator *)
  mutable sigma : int; (* counter value at which the next signal fires *)
  mutable pos : int; (* index in the node's sigma heap; -1 when absent *)
}

(* The per-node min-heap H(u) of slack deadlines, intrusive and specialized:
   entries are the edges themselves, ordered by [sigma], each knowing its
   own array index. There is one such heap per last-dimension node and one
   entry per (query, canonical node) pair — sum of |U_q| entries overall —
   so both the per-entry footprint and the per-comparison cost matter far
   more than generality here (a closure-based generic heap measurably
   dominates the 2D running time). *)
and sheap = { mutable data : edge array; mutable len : int }

(* One endpoint-tree level, stored structure-of-arrays: every per-node
   attribute lives in a contiguous array indexed by node id (preorder,
   root = 0), with -1 child sentinels instead of [node option] records.
   The hot path — one root-to-leaf descent per element per level — then
   touches a handful of flat int/float arrays whose upper levels stay
   cache-resident, instead of chasing boxed node pointers. [jlo, jhi) is
   node id's jurisdiction interval; the rightmost spine has jhi =
   infinity. Last-dimension levels carry the element counters and the
   per-node sigma heaps; other levels carry the secondary trees on the
   next dimension ([sub]). *)
and level = {
  k : int; (* dimension of this level *)
  last : bool; (* k = dims - 1: nodes carry counters + heaps *)
  n : int; (* node count; 0 = empty level *)
  depth : int; (* longest root-to-leaf path, in nodes *)
  jlo : float array;
  jhi : float array;
  left : int array; (* -1 for leaves *)
  right : int array;
  counter : int array; (* last level only, else [||] *)
  heaps : sheap array; (* last level only, else [||] *)
  sub : level option array; (* non-last levels only, else [||] *)
}

type t = {
  dims : int;
  eager : bool; (* ablation: skip DT rounds, signal every counter change *)
  top : level;
  states : (int, qstate) Hashtbl.t;
  mutable alive : int;
  built : int;
  on_mature : int -> unit;
  st : stats;
}

(* ---- intrusive sigma heap ------------------------------------------- *)

let heap_swap h i j =
  let a = h.data.(i) and b = h.data.(j) in
  h.data.(i) <- b;
  h.data.(j) <- a;
  a.pos <- j;
  b.pos <- i

let rec heap_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.data.(i).sigma < h.data.(parent).sigma then begin
      heap_swap h i parent;
      heap_up h parent
    end
  end

let rec heap_down h i =
  let l = (2 * i) + 1 in
  if l < h.len then begin
    let r = l + 1 in
    let smallest = if r < h.len && h.data.(r).sigma < h.data.(l).sigma then r else l in
    if h.data.(smallest).sigma < h.data.(i).sigma then begin
      heap_swap h i smallest;
      heap_down h smallest
    end
  end

let heap_push h e =
  let cap = Array.length h.data in
  if h.len >= cap then begin
    let ndata = Array.make (max 4 (2 * cap)) e in
    Array.blit h.data 0 ndata 0 h.len;
    h.data <- ndata
  end;
  h.data.(h.len) <- e;
  e.pos <- h.len;
  h.len <- h.len + 1;
  heap_up h e.pos

let heap_remove h e =
  let i = e.pos in
  assert (i >= 0 && i < h.len && h.data.(i) == e);
  h.len <- h.len - 1;
  e.pos <- -1;
  if i <> h.len then begin
    let last = h.data.(h.len) in
    h.data.(i) <- last;
    last.pos <- i;
    heap_down h i;
    heap_up h last.pos
  end

(* Restore order after [e.sigma] changed in place. *)
let heap_fix h e =
  heap_down h e.pos;
  heap_up h e.pos

(* ---- construction --------------------------------------------------- *)

let empty_level k last =
  {
    k;
    last;
    n = 0;
    depth = 0;
    jlo = [||];
    jhi = [||];
    left = [||];
    right = [||];
    counter = [||];
    heaps = [||];
    sub = [||];
  }

let rec build_level ~dims k (qs : qstate list) : level =
  let last = k = dims - 1 in
  (* Grid endpoints on dimension k. A +infinity upper bound creates no
     endpoint: the rightmost jurisdiction already extends to +infinity. *)
  let endpoints =
    List.concat_map
      (fun q ->
        let lo = q.query.rect.lo.(k) and hi = q.query.rect.hi.(k) in
        if hi = infinity then [ lo ] else [ lo; hi ])
      qs
  in
  let keys = Array.of_list (List.sort_uniq compare endpoints) in
  let kn = Array.length keys in
  if kn = 0 then empty_level k last
  else begin
    (* Balanced binary tree over the kn leaves: exactly 2*kn - 1 nodes,
       allocated preorder so a left child is its parent's immediate
       neighbour in every array. *)
    let n = (2 * kn) - 1 in
    let jlo = Array.make n 0. and jhi = Array.make n 0. in
    let left = Array.make n (-1) and right = Array.make n (-1) in
    let next = ref 0 in
    let maxdepth = ref 0 in
    let rec build lo hi d =
      let id = !next in
      incr next;
      if d > !maxdepth then maxdepth := d;
      if lo = hi then begin
        jlo.(id) <- keys.(lo);
        jhi.(id) <- (if lo + 1 < kn then keys.(lo + 1) else infinity)
      end
      else begin
        let mid = (lo + hi) / 2 in
        let l = build lo mid (d + 1) in
        let r = build (mid + 1) hi (d + 1) in
        left.(id) <- l;
        right.(id) <- r;
        jlo.(id) <- jlo.(l);
        jhi.(id) <- jhi.(r)
      end;
      id
    in
    ignore (build 0 (kn - 1) 1 : int);
    let lvl =
      {
        k;
        last;
        n;
        depth = !maxdepth;
        jlo;
        jhi;
        left;
        right;
        counter = (if last then Array.make n 0 else [||]);
        heaps = (if last then Array.init n (fun _ -> { data = [||]; len = 0 }) else [||]);
        sub = (if last then [||] else Array.make n None);
      }
    in
    (* Canonical decomposition of each [qlo, qhi) over the level: emit the
       maximal nodes whose jurisdiction is contained in the range. Since
       qlo and qhi are grid endpoints of this level, a leaf can never
       partially overlap the range. *)
    let pending = if last then [||] else Array.make n [] in
    let rec add_canonical u qlo qhi q =
      if qlo <= jlo.(u) && jhi.(u) <= qhi then begin
        if last then
          q.tmp_edges <-
            { owner = q; elvl = lvl; enode = u; cbar = 0; sigma = 0; pos = -1 } :: q.tmp_edges
        else pending.(u) <- q :: pending.(u)
      end
      else if jhi.(u) <= qlo || qhi <= jlo.(u) then ()
      else begin
        assert (left.(u) >= 0);
        add_canonical left.(u) qlo qhi q;
        add_canonical right.(u) qlo qhi q
      end
    in
    List.iter
      (fun q -> add_canonical 0 q.query.rect.lo.(k) q.query.rect.hi.(k) q)
      qs;
    (* Recursively hang the secondary trees. *)
    if not last then
      for u = 0 to n - 1 do
        if pending.(u) <> [] then lvl.sub.(u) <- Some (build_level ~dims (k + 1) pending.(u))
      done;
    lvl
  end

(* ---- distributed-tracking per query ---------------------------------- *)

let set_deadline t edge =
  t.st.heap_ops <- t.st.heap_ops + 1;
  let h = edge.elvl.heaps.(edge.enode) in
  if edge.pos >= 0 then heap_fix h edge else heap_push h edge

(* Start a DT round (or the direct endgame) for [q], given how much weight
   it still needs. Resynchronizes every edge with its node's exact counter
   — the "collection" step of the protocol. *)
let start_phase t (q : qstate) remaining =
  assert (remaining >= 1);
  let h = Array.length q.edges in
  if t.eager || remaining <= 6 * h then begin
    q.direct <- true;
    q.wknown <- q.tree_tau - remaining;
    Array.iter
      (fun e ->
        let c = e.elvl.counter.(e.enode) in
        e.cbar <- c;
        e.sigma <- c + 1;
        set_deadline t e)
      q.edges
  end
  else begin
    q.direct <- false;
    q.lambda <- remaining / (2 * h);
    q.signals <- 0;
    Array.iter
      (fun e ->
        e.cbar <- e.elvl.counter.(e.enode);
        e.sigma <- e.cbar + q.lambda;
        set_deadline t e)
      q.edges
  end

let tree_weight (q : qstate) =
  Array.fold_left (fun acc e -> acc + e.elvl.counter.(e.enode)) 0 q.edges

let mature t (q : qstate) =
  q.alive <- false;
  Array.iter
    (fun e ->
      if e.pos >= 0 then begin
        heap_remove e.elvl.heaps.(e.enode) e;
        t.st.heap_ops <- t.st.heap_ops + 1
      end)
    q.edges;
  t.alive <- t.alive - 1;
  Hashtbl.remove t.states q.query.id;
  t.on_mature q.query.id

let end_round t (q : qstate) =
  t.st.round_ends <- t.st.round_ends + 1;
  let w = tree_weight q in
  let remaining = q.tree_tau - w in
  if remaining <= 0 then mature t q else start_phase t q remaining

(* The edge has just been popped from its node's heap because
   c(u) >= sigma. Deliver the pending signal(s). *)
let fire t edge =
  let q = edge.owner in
  let c = edge.elvl.counter.(edge.enode) in
  if q.direct then begin
    t.st.signals <- t.st.signals + 1;
    q.wknown <- q.wknown + (c - edge.cbar);
    edge.cbar <- c;
    if q.wknown >= q.tree_tau then mature t q
    else begin
      edge.sigma <- c + 1;
      set_deadline t edge
    end
  end
  else begin
    let h = Array.length q.edges in
    let k = (c - edge.cbar) / q.lambda in
    (* The coordinator halts the round at the h-th signal, so at most
       h - q.signals of the k signals are actually delivered; any surplus
       weight is picked up by the round-end collection. *)
    let delivered = min k (h - q.signals) in
    t.st.signals <- t.st.signals + delivered;
    q.signals <- q.signals + delivered;
    if q.signals >= h then end_round t q
    else begin
      edge.cbar <- edge.cbar + (k * q.lambda);
      edge.sigma <- edge.cbar + q.lambda;
      set_deadline t edge
    end
  end

(* Hot path: runs on every counter increment of every visited node, so it
   must not allocate when no deadline fires. *)
let drain t lvl u =
  let h = lvl.heaps.(u) in
  let c = lvl.counter.(u) in
  let rec loop () =
    if h.len > 0 then begin
      let edge = h.data.(0) in
      if edge.sigma <= c then begin
        heap_remove h edge;
        t.st.heap_ops <- t.st.heap_ops + 1;
        fire t edge;
        loop ()
      end
    end
  in
  loop ()

(* One root-to-leaf descent per level, flat-array edition: at every node
   of the path, a last-dimension level bumps the counter and drains the
   node's deadline heap; other levels recurse into the node's secondary
   tree. Allocation-free. *)
let rec process_level t (value : point) w lvl =
  if lvl.n > 0 then begin
    let x = value.(lvl.k) in
    if x >= lvl.jlo.(0) then descend t value w lvl x 0
  end

and descend t value w lvl x u =
  (if lvl.last then begin
     lvl.counter.(u) <- lvl.counter.(u) + w;
     t.st.node_updates <- t.st.node_updates + 1;
     drain t lvl u
   end
   else match lvl.sub.(u) with Some sub -> process_level t value w sub | None -> ());
  let r = lvl.right.(u) in
  if r >= 0 then
    if x >= lvl.jlo.(r) then descend t value w lvl x r else descend t value w lvl x lvl.left.(u)

(* ---- public API ------------------------------------------------------ *)

let build ?(eager = false) ~dim ~on_mature batch =
  if dim < 1 then invalid_arg "Endpoint_tree.build: dim < 1";
  let states = Hashtbl.create (max 16 (2 * List.length batch)) in
  let qstates =
    List.map
      (fun (q, remaining) ->
        validate_query ~dim q;
        if remaining < 1 then invalid_arg "Endpoint_tree.build: remaining < 1";
        if remaining > q.threshold then
          invalid_arg "Endpoint_tree.build: remaining exceeds threshold";
        if Hashtbl.mem states q.id then invalid_arg "Endpoint_tree.build: duplicate query id";
        let qs =
          {
            query = q;
            tree_tau = remaining;
            edges = [||];
            tmp_edges = [];
            lambda = 0;
            signals = 0;
            direct = false;
            wknown = 0;
            alive = true;
          }
        in
        Hashtbl.replace states q.id qs;
        qs)
      batch
  in
  let top = build_level ~dims:dim 0 qstates in
  let t =
    {
      dims = dim;
      eager;
      top;
      states;
      alive = List.length qstates;
      built = List.length qstates;
      on_mature;
      st = { elements = 0; node_updates = 0; signals = 0; round_ends = 0; heap_ops = 0 };
    }
  in
  List.iter
    (fun q ->
      q.edges <- Array.of_list q.tmp_edges;
      q.tmp_edges <- [];
      assert (Array.length q.edges >= 1);
      start_phase t q q.tree_tau)
    qstates;
  t

let dim t = t.dims

let process t e =
  if Array.length e.value <> t.dims then invalid_arg "Endpoint_tree.process: bad dimensionality";
  if e.weight < 1 then invalid_arg "Endpoint_tree.process: weight < 1";
  t.st.elements <- t.st.elements + 1;
  process_level t e.value e.weight t.top

(* ---- batched ingestion ---------------------------------------------- *)

(* A cursor caches the current root-to-leaf path of the top level between
   consecutive elements of a key-sorted batch, and — on a 1D (last) level
   — defers counter increments with cumulative-weight marks: a node that
   stays on the path across many consecutive elements receives ONE
   aggregated bump (and one heap drain) when it finally leaves the path
   (or at {!flush}), instead of one per element.

   Protocol correctness: [fire] delivers exact [c - cbar] deltas in
   multiples of lambda and re-arms [sigma > c], so an aggregated jump of
   k*lambda produces exactly the k signals the per-element drains would
   have, and the known weight never exceeds the true weight (never
   early). After [flush] every counter is fully applied and drained, so
   per-node undelivered weight is < lambda and the DT invariant
   W < (wknown + tau)/2 holds: any query whose true weight reached tau
   has matured. Maturities therefore coarsen to batch granularity but the
   matured id multiset equals the sequential one at every batch boundary.
   Work counters (node updates, heap ops) can only decrease. *)
type cursor = {
  ctree : t;
  cpath : int array; (* node ids of the cached top-level path, root first *)
  cmark : int array; (* cumulative weight [cw] when cpath.(i) was pushed *)
  mutable clen : int;
  mutable cw : int; (* cumulative weight of all elements fed so far *)
  clast : float ref;
      (* last key fed; enforces the sortedness contract. A [float ref]
         (single-field float record) stores the float flat — a [mutable
         float] field in this mixed record would box on every write. *)
}

let cursor t =
  {
    ctree = t;
    cpath = Array.make (t.top.depth + 1) (-1);
    cmark = Array.make (t.top.depth + 1) 0;
    clen = 0;
    cw = 0;
    clast = ref neg_infinity;
  }

(* Apply the pending aggregated weight of path slot [i] (1D levels only). *)
let flush_slot c i =
  let t = c.ctree in
  let lvl = t.top in
  let pend = c.cw - c.cmark.(i) in
  if pend > 0 then begin
    let u = c.cpath.(i) in
    lvl.counter.(u) <- lvl.counter.(u) + pend;
    t.st.node_updates <- t.st.node_updates + 1;
    drain t lvl u
  end

let flush c =
  if c.ctree.top.last then
    for i = c.clen - 1 downto 0 do
      flush_slot c i
    done;
  c.clen <- 0

let process_sorted c e =
  let t = c.ctree in
  if Array.length e.value <> t.dims then
    invalid_arg "Endpoint_tree.process_sorted: bad dimensionality";
  if e.weight < 1 then invalid_arg "Endpoint_tree.process_sorted: weight < 1";
  t.st.elements <- t.st.elements + 1;
  let lvl = t.top in
  if lvl.n > 0 then begin
    let x = e.value.(lvl.k) in
    if not (x >= !(c.clast)) then
      invalid_arg "Endpoint_tree.process_sorted: elements not sorted on the first dimension";
    c.clast := x;
    let path = c.cpath in
    let last = lvl.last in
    (* Pop the path suffix whose jurisdictions end at or before x,
       flushing each popped node's aggregated pending weight. Jurisdiction
       intervals nest along the path, so the exhausted nodes form a
       contiguous suffix. The root's jurisdiction extends to +infinity, so
       once seeded the path never empties. *)
    let len = ref c.clen in
    while !len > 0 && x >= lvl.jhi.(path.(!len - 1)) do
      decr len;
      if last then flush_slot c !len
    done;
    if !len = 0 && x >= lvl.jlo.(0) then begin
      path.(0) <- 0;
      c.cmark.(0) <- c.cw;
      len := 1
    end;
    if !len > 0 then begin
      (* Tail walk: descend from the deepest surviving node to the leaf,
         marking each fresh node with the current cumulative weight. *)
      let u = ref path.(!len - 1) in
      while lvl.right.(!u) >= 0 do
        let r = lvl.right.(!u) in
        let nxt = if x >= lvl.jlo.(r) then r else lvl.left.(!u) in
        path.(!len) <- nxt;
        c.cmark.(!len) <- c.cw;
        incr len;
        u := nxt
      done;
      if last then
        (* The element's weight lands on every path node lazily: it is
           folded into [cw] and applied when nodes leave the path. *)
        c.cw <- c.cw + e.weight
      else
        (* Multi-dimensional: sub-trees key on other dimensions, so the
           element must be applied per-path-node immediately; the cursor
           still amortizes the navigation. *)
        for i = 0 to !len - 1 do
          match lvl.sub.(path.(i)) with
          | Some sub -> process_level t e.value e.weight sub
          | None -> ()
        done
    end;
    c.clen <- !len
  end

(* Sort by first coordinate without touching the boxed element array
   during the sort itself: extract the keys into an unboxed float array,
   sort an int permutation (no write barrier on int stores, branch-only
   comparator — the polymorphic [compare] on floats is an out-of-line C
   call and a heapsort makes ~2 n log n of them), then materialize the
   sorted element array in one pass. *)
let sort_batch (elems : elem array) =
  let n = Array.length elems in
  let keys = Array.init n (fun i -> (Array.unsafe_get elems i).value.(0)) in
  let idx = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      let a = Array.unsafe_get keys i and b = Array.unsafe_get keys j in
      if a < b then -1 else if a > b then 1 else 0)
    idx;
  Array.init n (fun i -> Array.unsafe_get elems (Array.unsafe_get idx i))

(* ---- 1D fast path: never touch a boxed element inside the hot loop ----

   For a 1D tree the only per-element inputs are the key and the weight,
   so the batch is reduced to two parallel unboxed arrays (float keys, int
   weights), co-sorted by a monomorphic quicksort (direct float compares,
   no closure calls, no write barriers — quicksort on the flat arrays is
   several times cheaper than [Array.sort] swapping boxed pointers through
   [caml_modify]), and fed through the cursor without validation or
   sortedness re-checks (our own sort guarantees both). *)

let swap_kw (keys : float array) (wts : int array) i j =
  let k = Array.unsafe_get keys i in
  Array.unsafe_set keys i (Array.unsafe_get keys j);
  Array.unsafe_set keys j k;
  let w = Array.unsafe_get wts i in
  Array.unsafe_set wts i (Array.unsafe_get wts j);
  Array.unsafe_set wts j w

let rec qsort_kw (keys : float array) (wts : int array) lo hi =
  if hi - lo > 12 then begin
    (* median-of-three pivot, Hoare partition *)
    let mid = (lo + hi) lsr 1 in
    if keys.(mid) < keys.(lo) then swap_kw keys wts mid lo;
    if keys.(hi) < keys.(mid) then begin
      swap_kw keys wts hi mid;
      if keys.(mid) < keys.(lo) then swap_kw keys wts mid lo
    end;
    let p = keys.(mid) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while Array.unsafe_get keys !i < p do
        incr i
      done;
      while Array.unsafe_get keys !j > p do
        decr j
      done;
      if !i <= !j then begin
        swap_kw keys wts !i !j;
        incr i;
        decr j
      end
    done;
    qsort_kw keys wts lo !j;
    qsort_kw keys wts !i hi
  end
  else
    for i = lo + 1 to hi do
      let k = keys.(i) and w = wts.(i) in
      let j = ref (i - 1) in
      while !j >= lo && Array.unsafe_get keys !j > k do
        Array.unsafe_set keys (!j + 1) (Array.unsafe_get keys !j);
        Array.unsafe_set wts (!j + 1) (Array.unsafe_get wts !j);
        decr j
      done;
      Array.unsafe_set keys (!j + 1) k;
      Array.unsafe_set wts (!j + 1) w
    done

(* Feed one pre-validated, pre-sorted (key, weight) into a 1D cursor.
   Node-id indexing is safe by construction, so the jurisdiction walk uses
   unsafe loads. *)
let feed1 c (x : float) w =
  let t = c.ctree in
  let lvl = t.top in
  let path = c.cpath in
  let len = ref c.clen in
  while !len > 0 && x >= Array.unsafe_get lvl.jhi (Array.unsafe_get path (!len - 1)) do
    decr len;
    flush_slot c !len
  done;
  if !len = 0 && x >= Array.unsafe_get lvl.jlo 0 then begin
    Array.unsafe_set path 0 0;
    Array.unsafe_set c.cmark 0 c.cw;
    len := 1
  end;
  if !len > 0 then begin
    let u = ref (Array.unsafe_get path (!len - 1)) in
    let r = ref (Array.unsafe_get lvl.right !u) in
    while !r >= 0 do
      let nxt =
        if x >= Array.unsafe_get lvl.jlo !r then !r else Array.unsafe_get lvl.left !u
      in
      Array.unsafe_set path !len nxt;
      Array.unsafe_set c.cmark !len c.cw;
      incr len;
      u := nxt;
      r := Array.unsafe_get lvl.right nxt
    done;
    c.cw <- c.cw + w
  end;
  c.clen <- !len

let process_batch t elems =
  Array.iter (fun e -> validate_elem ~dim:t.dims e) elems;
  let n = Array.length elems in
  let lvl = t.top in
  if lvl.last then begin
    (* 1D: reduce to flat (key, weight) arrays, co-sort, feed. *)
    t.st.elements <- t.st.elements + n;
    if lvl.n > 0 && n > 0 then begin
      let keys = Array.init n (fun i -> (Array.unsafe_get elems i).value.(0)) in
      let wts = Array.init n (fun i -> (Array.unsafe_get elems i).weight) in
      qsort_kw keys wts 0 (n - 1);
      let c = cursor t in
      for i = 0 to n - 1 do
        feed1 c (Array.unsafe_get keys i) (Array.unsafe_get wts i)
      done;
      flush c
    end
  end
  else begin
    let sorted = sort_batch elems in
    let c = cursor t in
    Array.iter (fun e -> process_sorted c e) sorted;
    flush c
  end

let find_alive t id =
  match Hashtbl.find_opt t.states id with
  | Some q when q.alive -> q
  | _ -> raise Not_found

let is_alive t id = match Hashtbl.find_opt t.states id with Some q -> q.alive | None -> false

let remove t id =
  let q = find_alive t id in
  q.alive <- false;
  Array.iter
    (fun e ->
      if e.pos >= 0 then begin
        heap_remove e.elvl.heaps.(e.enode) e;
        t.st.heap_ops <- t.st.heap_ops + 1
      end)
    q.edges;
  t.alive <- t.alive - 1;
  Hashtbl.remove t.states id

let current_weight t id = tree_weight (find_alive t id)

let remaining t id =
  let q = find_alive t id in
  q.tree_tau - tree_weight q

let alive_count t = t.alive

let built_count t = t.built

let alive_queries t =
  Hashtbl.fold
    (fun _ (q : qstate) acc -> if q.alive then (q.query, q.tree_tau - tree_weight q) :: acc else acc)
    t.states []

let fanout t id = Array.length (find_alive t id).edges

let stats t = t.st

type space = { tree_nodes : int; live_entries : int; dead_entries : int }

let space t =
  let nodes = ref 0 and live = ref 0 and dead = ref 0 in
  let rec walk lvl =
    nodes := !nodes + lvl.n;
    if lvl.last then
      Array.iter
        (fun h ->
          live := !live + h.len;
          dead := !dead + (Array.length h.data - h.len))
        lvl.heaps
    else Array.iter (function Some sub -> walk sub | None -> ()) lvl.sub
  in
  walk t.top;
  { tree_nodes = !nodes; live_entries = !live; dead_entries = !dead }
