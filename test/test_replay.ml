(* Replay: op-line round-trips, the recording engine wrapper, and the
   end-to-end property that a recorded trace replayed against any engine
   yields the recorder's exact maturity log. *)

open Rts_core
open Rts_workload
module Prng = Rts_util.Prng

let q ~id ~threshold (lo, hi) = { Types.id; rect = Types.interval lo hi; threshold }

let test_op_line_roundtrip () =
  let ops =
    [
      Replay.Register (q ~id:3 ~threshold:100 (1.5, 2.5));
      Replay.Terminate 42;
      Replay.Element { Types.value = [| 7.25 |]; weight = 9 };
    ]
  in
  List.iter
    (fun op ->
      let line = Replay.op_to_line op in
      let parsed = Replay.parse_op ~dim:1 ~line_no:1 line in
      Alcotest.(check bool) ("roundtrip: " ^ line) true (parsed = op))
    ops

let test_parse_errors () =
  let bad l =
    match Replay.parse_op ~dim:1 ~line_no:7 l with
    | exception Csv_io.Parse_error msg ->
        Alcotest.(check bool) ("line number in: " ^ msg) true
          (String.length msg >= 6 && String.sub msg 0 6 = "line 7")
    | _ -> Alcotest.fail ("should not parse: " ^ l)
  in
  bad "X,1,2";
  bad "T,abc";
  bad "R,1";
  bad "E,";
  bad "no commas"

let test_recording_wrapper () =
  let log = ref [] in
  let engine = Replay.recording ~sink:(fun op -> log := op :: !log) (Baseline_engine.make ~dim:1) in
  engine.Engine.register (q ~id:1 ~threshold:5 (0., 10.));
  engine.Engine.register_batch [ q ~id:2 ~threshold:5 (0., 10.); q ~id:3 ~threshold:5 (0., 10.) ];
  ignore (engine.Engine.process { Types.value = [| 5. |]; weight = 2 });
  engine.Engine.terminate 2;
  let kinds =
    List.rev_map
      (function Replay.Register _ -> "R" | Replay.Terminate _ -> "T" | Replay.Element _ -> "E")
      !log
  in
  Alcotest.(check (list string)) "ops in order" [ "R"; "R"; "R"; "E"; "T" ] kinds;
  Alcotest.(check int) "engine state advanced" 2 (engine.Engine.alive ())

let test_replay_ops_outcome () =
  let ops =
    [
      Replay.Register (q ~id:1 ~threshold:3 (0., 10.));
      Replay.Element { Types.value = [| 5. |]; weight = 2 };
      Replay.Register (q ~id:2 ~threshold:2 (0., 10.));
      Replay.Element { Types.value = [| 50. |]; weight = 9 };
      Replay.Element { Types.value = [| 5. |]; weight = 1 };
      (* matures q1 (3/3) on element 3; q2 at 1/2 *)
      Replay.Terminate 2;
    ]
  in
  let o = Replay.replay_ops (Dt_engine.make ~dim:1) ops in
  Alcotest.(check int) "elements" 3 o.Replay.elements;
  Alcotest.(check int) "registered" 2 o.Replay.registered;
  Alcotest.(check int) "terminated" 1 o.Replay.terminated;
  Alcotest.(check (list (pair int int))) "maturity log" [ (3, 1) ] o.Replay.maturities

let test_parse_op_tolerates_whitespace () =
  (* Trailing '\r' (CRLF traces) and stray indentation are whitespace,
     not data — regression for the durability layer, whose WAL payloads
     must parse back regardless of how the trace was transported. *)
  List.iter
    (fun (label, line, expected) ->
      Alcotest.(check bool) label true (Replay.parse_op ~dim:1 ~line_no:1 line = expected))
    [
      ("trailing CR", "T,42\r", Replay.Terminate 42);
      ("surrounding spaces", "  R,1,5,0,10  ", Replay.Register (q ~id:1 ~threshold:5 (0., 10.)));
      ("tab indent + CR", "\tE,7.25,9\r", Replay.Element { Types.value = [| 7.25 |]; weight = 9 });
    ]

let test_engine_errors_carry_position () =
  (* Engine rejections surface as Engine_error with the op ordinal, not
     as the bare exception — recovery reports depend on the position. *)
  let ops =
    [
      Replay.Register (q ~id:1 ~threshold:3 (0., 10.));
      Replay.Element { Types.value = [| 5. |]; weight = 1 };
      Replay.Terminate 99 (* never registered *);
    ]
  in
  (match Replay.replay_ops (Baseline_engine.make ~dim:1) ops with
  | exception Replay.Engine_error { op_index; line_no; exn } ->
      Alcotest.(check int) "op index" 3 op_index;
      Alcotest.(check int) "line_no = op index for replay_ops" 3 line_no;
      Alcotest.(check bool) "inner exn preserved" true (exn = Not_found)
  | _ -> Alcotest.fail "terminate of unknown id should raise Engine_error");
  let dup =
    [
      Replay.Register (q ~id:1 ~threshold:3 (0., 10.));
      Replay.Register (q ~id:1 ~threshold:3 (0., 10.));
    ]
  in
  (match Replay.replay_ops (Dt_engine.make ~dim:1) dup with
  | exception Replay.Engine_error { op_index = 2; exn = Invalid_argument _; _ } -> ()
  | exception e -> Alcotest.fail ("wrong exception: " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "duplicate register should raise Engine_error");
  (* parse errors must NOT be wrapped — they already carry a line number *)
  match Replay.parse_op ~dim:1 ~line_no:3 "X,junk" with
  | exception Csv_io.Parse_error _ -> ()
  | _ -> Alcotest.fail "junk should be a Parse_error"

(* Building valid terminate ops requires knowing maturities; simplest is to
   record from a live engine. *)
let recorded_trace seed steps =
  let log = ref [] in
  let engine =
    Replay.recording ~sink:(fun op -> log := op :: !log) (Baseline_engine.make ~dim:1)
  in
  let rng = Prng.create ~seed in
  let alive = ref [] and next = ref 0 in
  for _ = 1 to steps do
    if Prng.bernoulli rng 0.2 || !alive = [] then begin
      let a = float_of_int (Prng.int rng 20) in
      engine.Engine.register
        (q ~id:!next ~threshold:(1 + Prng.int rng 40) (a, a +. 1. +. float_of_int (Prng.int rng 10)));
      alive := !next :: !alive;
      incr next
    end;
    if !alive <> [] && Prng.bernoulli rng 0.05 then begin
      let v = List.nth !alive (Prng.int rng (List.length !alive)) in
      engine.Engine.terminate v;
      alive := List.filter (fun i -> i <> v) !alive
    end;
    let matured =
      engine.Engine.process
        { Types.value = [| float_of_int (Prng.int rng 25) |]; weight = 1 + Prng.int rng 5 }
    in
    alive := List.filter (fun i -> not (List.mem i matured)) !alive
  done;
  List.rev !log

let test_recorded_trace_replays_identically () =
  let ops = recorded_trace 5 800 in
  let reference = Replay.replay_ops (Baseline_engine.make ~dim:1) ops in
  List.iter
    (fun (name, engine) ->
      let o = Replay.replay_ops engine ops in
      Alcotest.(check (list (pair int int)))
        (name ^ " maturity log") reference.Replay.maturities o.Replay.maturities;
      Alcotest.(check int) (name ^ " elements") reference.Replay.elements o.Replay.elements)
    [
      ("dt", Dt_engine.make ~dim:1);
      ("dt-eager", Dt_engine.make_eager ~dim:1);
      ("interval-tree", Stab1d_engine.make ());
      ("r-tree", Rtree_engine.make ~dim:1);
    ]

let test_text_roundtrip_full_trace () =
  (* Serialize a whole trace to text and back; outcome unchanged. *)
  let ops = recorded_trace 11 300 in
  let text = String.concat "\n" (List.map Replay.op_to_line ops) in
  let reparsed =
    String.split_on_char '\n' text
    |> List.mapi (fun i line -> Replay.parse_op ~dim:1 ~line_no:(i + 1) line)
  in
  let a = Replay.replay_ops (Dt_engine.make ~dim:1) ops in
  let b = Replay.replay_ops (Dt_engine.make ~dim:1) reparsed in
  Alcotest.(check (list (pair int int))) "same maturities" a.Replay.maturities b.Replay.maturities

let () =
  Alcotest.run "replay"
    [
      ( "unit",
        [
          Alcotest.test_case "op line roundtrip" `Quick test_op_line_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "whitespace and CRLF tolerated" `Quick
            test_parse_op_tolerates_whitespace;
          Alcotest.test_case "engine errors carry position" `Quick
            test_engine_errors_carry_position;
          Alcotest.test_case "recording wrapper" `Quick test_recording_wrapper;
          Alcotest.test_case "replay_ops outcome" `Quick test_replay_ops_outcome;
          Alcotest.test_case "recorded trace replays identically" `Quick
            test_recorded_trace_replays_identically;
          Alcotest.test_case "text roundtrip of a full trace" `Quick
            test_text_roundtrip_full_trace;
        ] );
    ]
