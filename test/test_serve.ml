(* rts-serve daemon core: frame codec round-trips, typed admission
   refusals, backpressure, supervised wedge recovery, and the soak
   harness's never-early / exactly-once guarantee on both a qcheck
   seed sweep and the pinned CI seeds (RTS_SERVE_SEEDS). *)

open Rts_core
open Rts_workload
module Io = Rts_resilience.Io
module Wal = Rts_resilience.Wal
module Vclock = Rts_net.Vclock
module Frame = Rts_serve.Frame
module Server = Rts_serve.Server
module Client = Rts_serve.Client
module Hub = Rts_serve.Hub
module Soak = Rts_serve.Soak

let make ~dim = Dt_engine.make ~dim

(* ------------------------------------------------------------------ *)
(* Frame codec                                                         *)
(* ------------------------------------------------------------------ *)

let client_frame = Alcotest.testable Frame.pp_client ( = )
let server_frame = Alcotest.testable Frame.pp_server ( = )

let roundtrip_client ~dim f =
  match Frame.client_of_string ~dim (Frame.client_to_string f) with
  | Ok g -> Alcotest.check client_frame (Frame.client_to_string f) f g
  | Error e -> Alcotest.failf "client %S did not parse: %s" (Frame.client_to_string f) e

let roundtrip_server f =
  match Frame.server_of_string (Frame.server_to_string f) with
  | Ok g -> Alcotest.check server_frame (Frame.server_to_string f) f g
  | Error e -> Alcotest.failf "server %S did not parse: %s" (Frame.server_to_string f) e

let test_frame_units () =
  let gen = Generator.create ~dim:2 ~seed:7 () in
  List.iter (roundtrip_client ~dim:2)
    [
      Frame.Op { tenant = "t0"; op = Replay.Register (Generator.query gen ~id:3 ~threshold:9) };
      Frame.Op { tenant = "a_B-9."; op = Replay.Terminate 14 };
      Frame.Op { tenant = "t0"; op = Replay.Element (Generator.element gen) };
      Frame.Batch { tenant = "t1"; elems = Array.init 4 (fun _ -> Generator.element gen) };
      Frame.Subscribe { tenant = "watcher"; after = 0 };
      Frame.Stats;
      Frame.Shutdown;
    ];
  List.iter roundtrip_server
    [
      Frame.Accepted { tenant = "t0"; ops = 8 };
      Frame.Overloaded { tenant = "t0"; reason = Frame.Wal_lag };
      Frame.Retry_after { ticks = 3 };
      Frame.Rejected { message = "bad frame: \"quoted, with commas\"\n" };
      Frame.Matured { tenant = "t0"; ordinal = 512; ids = [ 1; 9; 40 ] };
      Frame.Stats_reply { body = "serve_accepted_total 12\n" };
      Frame.Bye;
    ];
  List.iter
    (fun r ->
      Alcotest.(check (option string))
        "reason round-trip" (Some (Frame.reason_to_string r))
        (Option.map Frame.reason_to_string (Frame.reason_of_string (Frame.reason_to_string r))))
    [ Frame.Tenants; Frame.Quota; Frame.Wal_lag; Frame.Budget; Frame.Disk_full ]

let test_frame_malformed () =
  let bad ~dim s =
    match Frame.client_of_string ~dim s with
    | Error _ -> ()
    | Ok f -> Alcotest.failf "%S should not parse (got %s)" s (Frame.client_to_string f)
  in
  bad ~dim:1 "bogus";
  bad ~dim:1 "op,t0";
  bad ~dim:1 "op,bad tenant!,T,3";
  bad ~dim:1 "op,,T,3";
  bad ~dim:2 "op,t0,E,1.0";
  (* dim mismatch *)
  bad ~dim:1 "batch,t0,";
  match Frame.server_of_string "accepted,t0,notanumber" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed server frame should not parse"

(* qcheck: every well-formed client frame survives the wire, for every
   dim the generator can draw *)
let prop_client_roundtrip =
  QCheck.Test.make
    ~count:(Qcheck_env.count 200)
    ~name:"client frame codec round-trip"
    QCheck.(pair (int_range 1 4) small_nat)
    (fun (dim, seed) ->
      let gen = Generator.create ~dim ~seed () in
      let rng = Rts_util.Prng.create ~seed:(seed + 1) in
      let frame =
        match Rts_util.Prng.int rng 5 with
        | 0 ->
            Frame.Op
              {
                tenant = "t0";
                op =
                  Replay.Register
                    (Generator.query gen ~id:(Rts_util.Prng.int rng 1000)
                       ~threshold:(1 + Rts_util.Prng.int rng 10_000));
              }
        | 1 -> Frame.Op { tenant = "t1"; op = Replay.Terminate (Rts_util.Prng.int rng 1000) }
        | 2 -> Frame.Op { tenant = "t2"; op = Replay.Element (Generator.element gen) }
        | 3 ->
            Frame.Batch
              {
                tenant = "t3";
                elems =
                  Array.init (1 + Rts_util.Prng.int rng 6) (fun _ -> Generator.element gen);
              }
        | _ -> Frame.Subscribe { tenant = "sub-0"; after = 0 }
      in
      Frame.client_of_string ~dim (Frame.client_to_string frame) = Ok frame)

(* ------------------------------------------------------------------ *)
(* Admission control & backpressure (direct Server.handle)             *)
(* ------------------------------------------------------------------ *)

(* a server whose replies land in a list, with one stable mem dir per
   tenant so restarts really recover *)
let direct_server config =
  let clock = Vclock.create () in
  let bases = Hashtbl.create 4 in
  let provider ~tenant ~incarnation:_ =
    match Hashtbl.find_opt bases tenant with
    | Some d -> d
    | None ->
        let d = Io.mem_dir () in
        Hashtbl.add bases tenant d;
        d
  in
  let replies = ref [] in
  let send ~dst:_ frame = replies := frame :: !replies in
  let server = Server.create ~config ~clock ~make ~provider ~send () in
  (server, clock, replies, bases)

let last replies =
  match !replies with [] -> Alcotest.fail "expected a reply" | r :: _ -> r

let gen_ops ~dim ~seed =
  let gen = Generator.create ~dim ~seed () in
  ( (fun ~id ~threshold -> Replay.Register (Generator.query gen ~id ~threshold)),
    fun () -> Replay.Element (Generator.element gen) )

let test_admission_tenants () =
  let config = { Server.default with Server.dim = 1; max_tenants = 1 } in
  let server, _, replies, _ = direct_server config in
  let register, _ = gen_ops ~dim:1 ~seed:3 in
  Server.handle server ~src:0 (Frame.Op { tenant = "a"; op = register ~id:0 ~threshold:5 });
  Alcotest.check server_frame "first tenant admitted"
    (Frame.Accepted { tenant = "a"; ops = 1 })
    (last replies);
  Server.handle server ~src:0 (Frame.Op { tenant = "b"; op = register ~id:0 ~threshold:5 });
  Alcotest.check server_frame "tenant table full"
    (Frame.Overloaded { tenant = "b"; reason = Frame.Tenants })
    (last replies)

let test_admission_quota () =
  let config = { Server.default with Server.dim = 1; query_quota = 2 } in
  let server, _, replies, _ = direct_server config in
  let register, _ = gen_ops ~dim:1 ~seed:4 in
  for id = 0 to 1 do
    Server.handle server ~src:0 (Frame.Op { tenant = "t"; op = register ~id ~threshold:9 })
  done;
  Server.handle server ~src:0 (Frame.Op { tenant = "t"; op = register ~id:2 ~threshold:9 });
  Alcotest.check server_frame "third registration over quota"
    (Frame.Overloaded { tenant = "t"; reason = Frame.Quota })
    (last replies);
  (* quota gates registrations only: elements still flow *)
  let _, element = gen_ops ~dim:1 ~seed:5 in
  Server.handle server ~src:0 (Frame.Op { tenant = "t"; op = element () });
  Alcotest.check server_frame "elements unaffected by quota"
    (Frame.Accepted { tenant = "t"; ops = 1 })
    (last replies)

let test_admission_wal_lag () =
  (* nothing drains (the clock never runs), so every accepted op counts
     toward the durability backlog until the limit trips *)
  let config =
    { Server.default with Server.dim = 1; wal_lag_limit = 4; queue_capacity = 64 }
  in
  let server, _, replies, _ = direct_server config in
  let _, element = gen_ops ~dim:1 ~seed:6 in
  for _ = 1 to 4 do
    Server.handle server ~src:0 (Frame.Op { tenant = "t"; op = element () })
  done;
  Alcotest.check server_frame "under the lag limit"
    (Frame.Accepted { tenant = "t"; ops = 1 })
    (last replies);
  Server.handle server ~src:0 (Frame.Op { tenant = "t"; op = element () });
  Alcotest.check server_frame "durability backlog over limit"
    (Frame.Overloaded { tenant = "t"; reason = Frame.Wal_lag })
    (last replies);
  Alcotest.(check int) "nothing admitted past the refusal" 4 (Server.accepted_ops server "t")

let test_backpressure_retry () =
  let config =
    {
      Server.default with
      Server.dim = 1;
      queue_capacity = 2;
      wal_lag_limit = 512;
      retry_after = 7;
    }
  in
  let server, clock, replies, _ = direct_server config in
  let _, element = gen_ops ~dim:1 ~seed:8 in
  for _ = 1 to 2 do
    Server.handle server ~src:0 (Frame.Op { tenant = "t"; op = element () })
  done;
  Server.handle server ~src:0 (Frame.Op { tenant = "t"; op = element () });
  Alcotest.check server_frame "ring full => typed backpressure"
    (Frame.Retry_after { ticks = 7 })
    (last replies);
  (* a batch is all-or-nothing: one slot free is not enough for two *)
  Vclock.run_until_idle clock;
  Alcotest.(check int) "queue drained by the paced task" 0 (Server.queue_depth server "t");
  Server.handle server ~src:0 (Frame.Op { tenant = "t"; op = element () });
  let gen = Generator.create ~dim:1 ~seed:9 () in
  Server.handle server ~src:0
    (Frame.Batch { tenant = "t"; elems = Array.init 2 (fun _ -> Generator.element gen) });
  Alcotest.check server_frame "batch refused whole"
    (Frame.Retry_after { ticks = 7 })
    (last replies)

let test_shutdown_rejects () =
  let server, _, replies, _ = direct_server { Server.default with Server.dim = 1 } in
  let _, element = gen_ops ~dim:1 ~seed:10 in
  Server.handle server ~src:0 (Frame.Op { tenant = "t"; op = element () });
  Server.handle server ~src:0 Frame.Shutdown;
  Alcotest.check server_frame "shutdown acknowledged" Frame.Bye (last replies);
  Alcotest.(check bool) "server reports shut down" true (Server.is_shutdown server);
  Server.handle server ~src:0 (Frame.Op { tenant = "t"; op = element () });
  (match last replies with
  | Frame.Rejected _ -> ()
  | f -> Alcotest.failf "expected Rejected after shutdown, got %s" (Frame.server_to_string f));
  Alcotest.(check int) "nothing queued post-shutdown" 0 (Server.queue_depth server "t")

(* ------------------------------------------------------------------ *)
(* Subscription watermark + stats gauges                               *)
(* ------------------------------------------------------------------ *)

let wq ~id ~threshold (lo, hi) = { Types.id; rect = Types.interval lo hi; threshold }
let wel v w = { Types.value = [| v |]; weight = w }

let matured_frames replies =
  List.filter_map
    (function Frame.Matured { ordinal; ids; _ } -> Some (ordinal, ids) | _ -> None)
    (List.rev !replies)

let test_subscribe_watermark_backfill () =
  let server, clock, replies, _ = direct_server { Server.default with Server.dim = 1 } in
  let op o = Server.handle server ~src:0 (Frame.Op { tenant = "t"; op = o }) in
  op (Replay.Register (wq ~id:1 ~threshold:2 (0., 10.)));
  op (Replay.Register (wq ~id:2 ~threshold:5 (0., 10.)));
  op (Replay.Element (wel 5. 2));
  (* ordinal 1: q1 matures *)
  op (Replay.Element (wel 5. 2));
  op (Replay.Element (wel 5. 2));
  (* ordinal 3: q2's consumed weight reaches 6 >= 5 *)
  Vclock.run_until_idle clock;
  Alcotest.(check (list (pair int int))) "server log" [ (1, 1); (3, 2) ]
    (Server.maturity_log server "t");
  (* a fresh subscriber (watermark 0) gets the whole backfill *)
  replies := [];
  Server.handle server ~src:7 (Frame.Subscribe { tenant = "t"; after = 0 });
  Alcotest.(check (list (pair int (list int)))) "full backfill" [ (1, [ 1 ]); (3, [ 2 ]) ]
    (matured_frames replies);
  (* a failover survivor that already consumed through ordinal 1 must
     not see it again: exactly-once across re-subscription *)
  replies := [];
  Server.handle server ~src:8 (Frame.Subscribe { tenant = "t"; after = 1 });
  Alcotest.(check (list (pair int (list int)))) "watermark excludes consumed ordinals"
    [ (3, [ 2 ]) ] (matured_frames replies);
  (* watermark at the log head: backfill is empty, not an error *)
  replies := [];
  Server.handle server ~src:9 (Frame.Subscribe { tenant = "t"; after = 3 });
  Alcotest.(check (list (pair int (list int)))) "nothing past the watermark" []
    (matured_frames replies)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_stats_tenant_gauges () =
  let config =
    { Server.default with Server.dim = 1; wal_lag_limit = 512; queue_capacity = 64 }
  in
  let server, clock, replies, _ = direct_server config in
  let _, element = gen_ops ~dim:1 ~seed:12 in
  for _ = 1 to 3 do
    Server.handle server ~src:0 (Frame.Op { tenant = "t"; op = element () })
  done;
  let stats_body () =
    Server.handle server ~src:0 Frame.Stats;
    match last replies with
    | Frame.Stats_reply { body } -> body
    | f -> Alcotest.failf "expected stats, got %s" (Frame.server_to_string f)
  in
  (* the clock has not run: three accepted ops are not yet durable, and
     the stats frame says so before any admission refusal would *)
  let body = stats_body () in
  Alcotest.(check bool) "backlog gauge reflects undrained ops" true
    (contains body "serve_wal_backlog_t 3");
  Alcotest.(check bool) "replica gauge present (zero without replication)" true
    (contains body "serve_replica_lag_t 0");
  Vclock.run_until_idle clock;
  let body = stats_body () in
  Alcotest.(check bool) "backlog drains to zero" true
    (contains body "serve_wal_backlog_t 0")

(* ------------------------------------------------------------------ *)
(* Supervision: injected wedge -> watchdog restart, nothing lost       *)
(* ------------------------------------------------------------------ *)

let test_wedge_restart () =
  let server_config =
    {
      Server.default with
      Server.dim = 1;
      queue_capacity = 8;
      drain_per_tick = 4;
      watchdog_interval = 5;
      wedge_timeout = 10;
    }
  in
  let bases = Hashtbl.create 4 in
  let provider ~tenant ~incarnation:_ =
    match Hashtbl.find_opt bases tenant with
    | Some d -> d
    | None ->
        let d = Io.mem_dir () in
        Hashtbl.add bases tenant d;
        d
  in
  let hub = Hub.create ~server_config ~clients:2 ~make ~provider () in
  let server = Hub.server hub in
  let feeder = Hub.client hub 0 in
  let watcher = Hub.client hub 1 in
  Client.enqueue watcher (Frame.Subscribe { tenant = "t0"; after = 0 });
  let gen = Generator.create ~dim:1 ~seed:21 () in
  for id = 0 to 14 do
    Client.enqueue feeder
      (Frame.Op
         { tenant = "t0"; op = Replay.Register (Generator.query gen ~id ~threshold:40) })
  done;
  for _ = 1 to 60 do
    Client.enqueue feeder
      (Frame.Op { tenant = "t0"; op = Replay.Element (Generator.element gen) })
  done;
  ignore
    (Vclock.schedule (Hub.clock hub) ~delay:15 (fun () -> Server.inject_wedge server "t0"));
  Hub.run hub;
  Server.shutdown server;
  Hub.run hub;
  Alcotest.(check bool) "watchdog restarted the wedged tenant" true
    (Server.restarts server "t0" >= 1);
  let scanned = Wal.scan ~dim:1 ~dir:(Hashtbl.find bases "t0") () in
  let oracle = Replay.replay_ops (make ~dim:1) scanned.Wal.ops in
  Alcotest.(check int) "every accepted op is on the WAL" (Server.applied_ops server "t0")
    scanned.Wal.records;
  Alcotest.(check bool) "server log == WAL oracle" true
    (Server.maturity_log server "t0" = oracle.Replay.maturities);
  Alcotest.(check bool) "subscriber saw the oracle stream" true
    (Client.matured watcher "t0" = oracle.Replay.maturities)

(* ------------------------------------------------------------------ *)
(* Combined-fault soak: qcheck seed sweep + pinned CI seeds            *)
(* ------------------------------------------------------------------ *)

let small_soak seed =
  {
    Soak.default with
    Soak.tenants = 2;
    queries = 12;
    elements = 160;
    batch = 5;
    threshold = 600;
    seed;
    faulty_incarnations = 3;
    crash_every = 60;
    wedges = 1;
  }

(* the tentpole property: for arbitrary seeds, a run under combined
   storage + network faults loses nothing — server log, subscriber
   stream and WAL oracle agree, maturities exactly once, never early *)
let prop_soak_never_early =
  QCheck.Test.make
    ~count:(Qcheck_env.count 6)
    ~name:"combined-fault soak: log == sub == oracle"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let report = Soak.run ~make (small_soak seed) in
      if not report.Soak.ok then
        QCheck.Test.fail_reportf "seed %d:@\n%a" seed Soak.pp_report report;
      true)

(* the seeds check-serve pins in CI — full default config, so this leg
   also exercises 3 tenants, ENOSPC draws and heavier churn *)
let test_pinned_seeds () =
  let seeds =
    match Sys.getenv_opt "RTS_SERVE_SEEDS" with
    | None | Some "" -> [ 3; 13; 29 ]
    | Some s -> String.split_on_char ',' s |> List.filter_map int_of_string_opt
  in
  List.iter
    (fun seed ->
      let report = Soak.run ~make { Soak.default with Soak.seed } in
      if not report.Soak.ok then
        Alcotest.failf "pinned seed %d failed:@\n%a" seed Soak.pp_report report;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d exercised crashes" seed)
        true
        (report.Soak.crashes > 0))
    seeds

let () =
  Alcotest.run "serve"
    [
      ( "frames",
        [
          Alcotest.test_case "codec round-trips" `Quick test_frame_units;
          Alcotest.test_case "malformed frames rejected" `Quick test_frame_malformed;
          QCheck_alcotest.to_alcotest prop_client_roundtrip;
        ] );
      ( "admission",
        [
          Alcotest.test_case "tenant table full" `Quick test_admission_tenants;
          Alcotest.test_case "query quota" `Quick test_admission_quota;
          Alcotest.test_case "wal lag limit" `Quick test_admission_wal_lag;
          Alcotest.test_case "backpressure retry" `Quick test_backpressure_retry;
          Alcotest.test_case "shutdown rejects" `Quick test_shutdown_rejects;
          Alcotest.test_case "subscribe watermark backfill" `Quick
            test_subscribe_watermark_backfill;
          Alcotest.test_case "stats tenant gauges" `Quick test_stats_tenant_gauges;
        ] );
      ("supervision", [ Alcotest.test_case "wedge restart" `Quick test_wedge_restart ]);
      ( "soak",
        [
          QCheck_alcotest.to_alcotest prop_soak_never_early;
          Alcotest.test_case "pinned CI seeds" `Slow test_pinned_seeds;
        ] );
    ]
