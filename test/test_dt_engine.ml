(* Dt_engine: logarithmic-method invariants (P1-P3), global rebuilding,
   threshold carry-over across migrations, progress accounting, and the
   register/terminate API contract. Cross-engine equivalence lives in
   test_engines.ml; here we test the engine's own structure. *)

open Rts_core
module Prng = Rts_util.Prng

let q ~id ~threshold (lo, hi) = { Types.id; rect = Types.interval lo hi; threshold }

let elem1 x w = { Types.value = [| x |]; weight = w }

let test_register_terminate_contract () =
  let t = Dt_engine.create ~dim:1 () in
  Dt_engine.register t (q ~id:1 ~threshold:5 (0., 10.));
  Alcotest.(check bool) "alive" true (Dt_engine.is_alive t 1);
  Alcotest.check_raises "duplicate id" (Invalid_argument "Dt_engine.register: id already alive")
    (fun () -> Dt_engine.register t (q ~id:1 ~threshold:5 (0., 10.)));
  Dt_engine.terminate t 1;
  Alcotest.(check bool) "terminated" false (Dt_engine.is_alive t 1);
  Alcotest.check_raises "terminate missing" Not_found (fun () -> Dt_engine.terminate t 1);
  (* an id may be reused once dead *)
  Dt_engine.register t (q ~id:1 ~threshold:5 (0., 10.));
  Alcotest.(check bool) "reused" true (Dt_engine.is_alive t 1)

let test_maturity_removes () =
  let t = Dt_engine.create ~dim:1 () in
  Dt_engine.register t (q ~id:1 ~threshold:2 (0., 10.));
  Alcotest.(check (list int)) "first element" [] (Dt_engine.process t (elem1 5. 1));
  Alcotest.(check (list int)) "matures" [ 1 ] (Dt_engine.process t (elem1 5. 1));
  Alcotest.(check bool) "gone" false (Dt_engine.is_alive t 1);
  Alcotest.(check (list int)) "no double report" [] (Dt_engine.process t (elem1 5. 1))

let test_threshold_carry_across_migration () =
  (* Register q1, stream some weight into it, then register more queries to
     force the logarithmic method to migrate q1 into a new tree. Its
     remaining threshold must carry over exactly. *)
  let t = Dt_engine.create ~dim:1 () in
  Dt_engine.register t (q ~id:0 ~threshold:10 (0., 10.));
  for _ = 1 to 6 do
    ignore (Dt_engine.process t (elem1 5. 1))
  done;
  Alcotest.(check int) "W=6" 6 (Dt_engine.progress t 0);
  (* force migrations *)
  for id = 1 to 20 do
    Dt_engine.register t (q ~id ~threshold:1000 (50., 60.))
  done;
  Alcotest.(check int) "W preserved" 6 (Dt_engine.progress t 0);
  for _ = 1 to 3 do
    ignore (Dt_engine.process t (elem1 5. 1))
  done;
  Alcotest.(check int) "W=9" 9 (Dt_engine.progress t 0);
  Alcotest.(check (list int)) "matures at exactly 10" [ 0 ] (Dt_engine.process t (elem1 5. 1))

let test_p1_tree_count_logarithmic () =
  let t = Dt_engine.create ~dim:1 () in
  let rng = Prng.create ~seed:21 in
  let m = 3000 in
  for id = 0 to m - 1 do
    let a = Prng.float rng 100. in
    Dt_engine.register t (q ~id ~threshold:1_000_000 (a, a +. 5.));
    if id mod 100 = 0 then begin
      let g = Dt_engine.tree_count t in
      let bound = int_of_float (log (float_of_int (id + 2)) /. log 2.) + 2 in
      Alcotest.(check bool)
        (Printf.sprintf "g=%d <= log2(m)+2=%d at m=%d" g bound (id + 1))
        true (g <= bound)
    end
  done

let test_space_shrinks_after_mass_termination () =
  (* Terminating most queries must trigger rebuilds: alive_count tracks
     and the engine keeps functioning with the remainder. *)
  let t = Dt_engine.create ~dim:1 () in
  for id = 0 to 999 do
    Dt_engine.register t (q ~id ~threshold:5 (0., 10.))
  done;
  let rebuilds_before = Dt_engine.rebuild_count t in
  for id = 0 to 899 do
    Dt_engine.terminate t id
  done;
  Alcotest.(check int) "alive" 100 (Dt_engine.alive_count t);
  Alcotest.(check bool) "rebuilds happened" true (Dt_engine.rebuild_count t > rebuilds_before);
  (* the survivors still mature exactly *)
  let matured = ref [] in
  for _ = 1 to 5 do
    matured := Dt_engine.process t (elem1 5. 1) @ !matured
  done;
  Alcotest.(check int) "all survivors matured" 100 (List.length !matured)

let test_progress_errors () =
  let t = Dt_engine.create ~dim:1 () in
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Dt_engine.progress t 1));
  Dt_engine.register t (q ~id:1 ~threshold:2 (0., 10.));
  ignore (Dt_engine.process t (elem1 5. 1));
  Alcotest.(check int) "W=1" 1 (Dt_engine.progress t 1);
  ignore (Dt_engine.process t (elem1 5. 5));
  Alcotest.check_raises "matured" Not_found (fun () -> ignore (Dt_engine.progress t 1))

let test_interleaved_register_process () =
  (* Queries registered mid-stream must only count subsequent elements. *)
  let t = Dt_engine.create ~dim:1 () in
  Dt_engine.register t (q ~id:1 ~threshold:3 (0., 10.));
  ignore (Dt_engine.process t (elem1 5. 1));
  ignore (Dt_engine.process t (elem1 5. 1));
  Dt_engine.register t (q ~id:2 ~threshold:3 (0., 10.));
  Alcotest.(check int) "late query starts at 0" 0 (Dt_engine.progress t 2);
  Alcotest.(check (list int)) "q1 matures alone" [ 1 ] (Dt_engine.process t (elem1 5. 1));
  ignore (Dt_engine.process t (elem1 5. 1));
  Alcotest.(check (list int)) "q2 matures 3 elements after its registration" [ 2 ]
    (Dt_engine.process t (elem1 5. 1))

let test_simultaneous_maturities () =
  let t = Dt_engine.create ~dim:1 () in
  for id = 0 to 9 do
    Dt_engine.register t (q ~id ~threshold:7 (0., 10.))
  done;
  Alcotest.(check (list int)) "all at once, sorted"
    (List.init 10 (fun i -> i))
    (Dt_engine.process t (elem1 5. 7))

let test_static_vs_paper_scenario () =
  (* Static batch + terminations: rebuild machinery exercises the paper's
     Scenario 1; survivors' maturity must stay exact (checked against a
     scalar model since all rects coincide). *)
  let t = Dt_engine.create_static ~dim:1 (List.init 50 (fun id -> q ~id ~threshold:100 (0., 10.))) in
  let rng = Prng.create ~seed:22 in
  let total = ref 0 in
  let alive = ref (List.init 50 (fun i -> i)) in
  let matured_total = ref 0 in
  while !alive <> [] && !total < 100_000 do
    (* occasionally terminate one *)
    if Prng.bernoulli rng 0.05 && List.length !alive > 1 then begin
      let victim = List.nth !alive (Prng.int rng (List.length !alive)) in
      Dt_engine.terminate t victim;
      alive := List.filter (fun i -> i <> victim) !alive
    end;
    let w = 1 + Prng.int rng 5 in
    let inside = Prng.bernoulli rng 0.5 in
    let x = if inside then 5. else 20. in
    let before = !total in
    if inside then total := !total + w;
    let matured = Dt_engine.process t (elem1 x w) in
    if inside && before < 100 && !total >= 100 then
      Alcotest.(check int) "everyone alive matures together" (List.length !alive)
        (List.length matured)
    else Alcotest.(check (list int)) "no stray maturities" [] matured;
    matured_total := !matured_total + List.length matured;
    alive := List.filter (fun i -> not (List.mem i matured)) !alive
  done;
  Alcotest.(check bool) "loop ended by maturity" true (!alive = [])

let test_space_tracks_alive () =
  (* The paper's space claim: O~(m_alive) at all times. Build 4000 queries,
     kill 90%, and require the footprint to shrink by a comparable factor
     (global rebuilding + the logarithmic method's P2/P3). *)
  let t = Dt_engine.create ~dim:1 () in
  let rng = Prng.create ~seed:31 in
  for id = 0 to 3999 do
    let a = Prng.float rng 1000. in
    Dt_engine.register t (q ~id ~threshold:1_000_000 (a, a +. 10.))
  done;
  let full = Dt_engine.space t in
  Alcotest.(check bool) "entries at least m" true (full.live_entries >= 4000);
  for id = 0 to 3599 do
    Dt_engine.terminate t id
  done;
  let shrunk = Dt_engine.space t in
  Alcotest.(check bool)
    (Printf.sprintf "live entries shrink with m_alive (%d -> %d)" full.live_entries
       shrunk.live_entries)
    true
    (shrunk.live_entries * 4 < full.live_entries);
  Alcotest.(check bool)
    (Printf.sprintf "dead slack bounded (%d dead vs %d live)" shrunk.dead_entries
       shrunk.live_entries)
    true
    (shrunk.dead_entries <= 4 * (shrunk.live_entries + 16));
  Alcotest.(check bool)
    (Printf.sprintf "nodes shrink too (%d -> %d)" full.tree_nodes shrunk.tree_nodes)
    true
    (shrunk.tree_nodes * 2 < full.tree_nodes)

let test_space_entries_linear_in_m () =
  (* live_entries = sum of h_q = O(m log m): check the per-query average is
     logarithmic, not linear, in m. *)
  let per_query m =
    let t = Dt_engine.create ~dim:1 () in
    let rng = Prng.create ~seed:37 in
    Dt_engine.register_batch t
      (List.init m (fun id ->
           let a = Prng.float rng 1000. in
           q ~id ~threshold:1_000_000 (a, a +. 100.)));
    float_of_int (Dt_engine.space t).live_entries /. float_of_int m
  in
  let small = per_query 500 and large = per_query 4000 in
  (* growing m by 8x may only grow h_q by ~log 8 = 3 levels *)
  Alcotest.(check bool)
    (Printf.sprintf "avg h_q grows sublinearly (%.1f -> %.1f)" small large)
    true
    (large < small +. 8.)

let test_snapshot_restore_engine_level () =
  (* Dt_engine.alive_snapshot / restore: continuation equivalence at the
     engine level (the facade-level test lives in test_rts.ml). *)
  let rng = Prng.create ~seed:41 in
  let t = Dt_engine.create ~dim:1 () in
  for id = 0 to 149 do
    let a = float_of_int (Prng.int rng 30) in
    Dt_engine.register t (q ~id ~threshold:(40 + Prng.int rng 100) (a, a +. 5.))
  done;
  for _ = 1 to 400 do
    ignore (Dt_engine.process t (elem1 (float_of_int (Prng.int rng 40)) (1 + Prng.int rng 3)))
  done;
  let snap = Dt_engine.alive_snapshot t in
  List.iter
    (fun ((qq : Types.query), w) ->
      Alcotest.(check int) "snapshot W = progress" (Dt_engine.progress t qq.id) w)
    snap;
  let t' = Dt_engine.restore ~dim:1 snap in
  Alcotest.(check int) "alive preserved" (Dt_engine.alive_count t) (Dt_engine.alive_count t');
  for step = 1 to 2000 do
    let e = elem1 (float_of_int (Prng.int rng 40)) (1 + Prng.int rng 3) in
    Alcotest.(check (list int))
      (Printf.sprintf "step %d" step)
      (Dt_engine.process t e) (Dt_engine.process t' e)
  done

let test_restore_validation () =
  Alcotest.check_raises "consumed too large"
    (Invalid_argument "Dt_engine.restore: consumed out of range") (fun () ->
      ignore (Dt_engine.restore ~dim:1 [ (q ~id:1 ~threshold:5 (0., 1.), 5) ]));
  Alcotest.check_raises "negative consumed"
    (Invalid_argument "Dt_engine.restore: consumed out of range") (fun () ->
      ignore (Dt_engine.restore ~dim:1 [ (q ~id:1 ~threshold:5 (0., 1.), -1) ]));
  Alcotest.check_raises "duplicate ids" (Invalid_argument "Dt_engine.restore: duplicate id")
    (fun () ->
      ignore
        (Dt_engine.restore ~dim:1
           [ (q ~id:1 ~threshold:5 (0., 1.), 0); (q ~id:1 ~threshold:5 (2., 3.), 0) ]))

let test_restore_edge_cases () =
  (* Empty snapshot: a valid, empty engine that still works afterwards. *)
  let t = Dt_engine.restore ~dim:1 [] in
  Alcotest.(check int) "empty restore: nothing alive" 0 (Dt_engine.alive_count t);
  Alcotest.(check (list int)) "empty restore: process is a no-op" [] (Dt_engine.process t (elem1 0.5 3));
  Dt_engine.register t (q ~id:7 ~threshold:2 (0., 1.));
  Alcotest.(check int) "empty restore: can still register" 1 (Dt_engine.alive_count t);
  (* consumed = threshold - 1: the query is one unit of weight from
     maturity, so the very next matching unit-weight element fires it. *)
  let t = Dt_engine.restore ~dim:1 [ (q ~id:3 ~threshold:10 (0., 1.), 9) ] in
  Alcotest.(check (list int)) "miss does not fire" [] (Dt_engine.process t (elem1 5. 1));
  Alcotest.(check (list int)) "one more unit matures" [ 3 ] (Dt_engine.process t (elem1 0.5 1));
  Alcotest.(check int) "gone after maturity" 0 (Dt_engine.alive_count t);
  (* consumed = 0 is legal (a fresh query), threshold - 1 is the max. *)
  let t = Dt_engine.restore ~dim:1 [ (q ~id:1 ~threshold:1 (0., 1.), 0) ] in
  Alcotest.(check (list int)) "threshold 1, consumed 0" [ 1 ] (Dt_engine.process t (elem1 0.5 1))

let prop_dynamic_churn =
  (* Random register/terminate/process churn; internal invariants must hold
     and alive bookkeeping must match a driver-side model. *)
  QCheck.Test.make ~count:50 ~name:"dynamic churn keeps bookkeeping consistent"
    QCheck.(pair small_int (int_range 50 400))
    (fun (seed, steps) ->
      let rng = Prng.create ~seed in
      let t = Dt_engine.create ~dim:1 () in
      let alive = ref [] in
      let next = ref 0 in
      let ok = ref true in
      for _ = 1 to steps do
        if Prng.bernoulli rng 0.3 then begin
          let a = float_of_int (Prng.int rng 20) in
          Dt_engine.register t
            (q ~id:!next ~threshold:(1 + Prng.int rng 50) (a, a +. 1. +. float_of_int (Prng.int rng 10)));
          alive := !next :: !alive;
          incr next
        end;
        if !alive <> [] && Prng.bernoulli rng 0.1 then begin
          let v = List.nth !alive (Prng.int rng (List.length !alive)) in
          Dt_engine.terminate t v;
          alive := List.filter (fun i -> i <> v) !alive
        end;
        let matured =
          Dt_engine.process t (elem1 (float_of_int (Prng.int rng 25)) (1 + Prng.int rng 6))
        in
        alive := List.filter (fun i -> not (List.mem i matured)) !alive;
        if Dt_engine.alive_count t <> List.length !alive then ok := false;
        List.iter (fun i -> if not (Dt_engine.is_alive t i) then ok := false) !alive
      done;
      !ok)

let prop_restore_continuation =
  (* The checkpointing contract the durability layer builds on: cut a
     random churn run at a random point, restore [alive_snapshot] into a
     fresh engine (lazy or eager), and the continuation is bit-identical
     element by element. *)
  QCheck.Test.make ~count:60 ~name:"restore (alive_snapshot t) continues bit-identically"
    QCheck.(triple small_int (int_range 20 300) bool)
    (fun (seed, steps, eager) ->
      let rng = Prng.create ~seed in
      let t = Dt_engine.create ~dim:1 () in
      let next = ref 0 in
      let step () =
        if Prng.bernoulli rng 0.3 || !next = 0 then begin
          let a = float_of_int (Prng.int rng 20) in
          Dt_engine.register t
            (q ~id:!next ~threshold:(1 + Prng.int rng 50)
               (a, a +. 1. +. float_of_int (Prng.int rng 10)));
          incr next
        end;
        ignore (Dt_engine.process t (elem1 (float_of_int (Prng.int rng 25)) (1 + Prng.int rng 6)))
      in
      let cut = Prng.int rng steps in
      for _ = 1 to cut do step () done;
      let t' = Dt_engine.restore ~eager ~dim:1 (Dt_engine.alive_snapshot t) in
      let ok = ref (Dt_engine.alive_count t = Dt_engine.alive_count t') in
      for _ = cut + 1 to steps do
        let e = elem1 (float_of_int (Prng.int rng 25)) (1 + Prng.int rng 6) in
        if Dt_engine.process t e <> Dt_engine.process t' e then ok := false
      done;
      !ok)

let () =
  Alcotest.run "dt_engine"
    [
      ( "unit",
        [
          Alcotest.test_case "register/terminate contract" `Quick test_register_terminate_contract;
          Alcotest.test_case "maturity removes" `Quick test_maturity_removes;
          Alcotest.test_case "threshold carries across migration" `Quick
            test_threshold_carry_across_migration;
          Alcotest.test_case "P1: tree count logarithmic" `Quick test_p1_tree_count_logarithmic;
          Alcotest.test_case "mass termination rebuilds" `Quick
            test_space_shrinks_after_mass_termination;
          Alcotest.test_case "progress errors" `Quick test_progress_errors;
          Alcotest.test_case "interleaved register/process" `Quick
            test_interleaved_register_process;
          Alcotest.test_case "simultaneous maturities sorted" `Quick test_simultaneous_maturities;
          Alcotest.test_case "static scenario with churn" `Quick test_static_vs_paper_scenario;
          Alcotest.test_case "space tracks m_alive" `Quick test_space_tracks_alive;
          Alcotest.test_case "space per query logarithmic" `Quick test_space_entries_linear_in_m;
          Alcotest.test_case "engine snapshot/restore" `Quick test_snapshot_restore_engine_level;
          Alcotest.test_case "restore validation" `Quick test_restore_validation;
          Alcotest.test_case "restore edge cases" `Quick test_restore_edge_cases;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_dynamic_churn;
          QCheck_alcotest.to_alcotest prop_restore_continuation;
        ] );
    ]
