(* Workload: generator distributions match the paper's Section 8 spec, and
   the scenario driver is deterministic and engine-agnostic — the same
   config must present the same stream to every engine, making maturity
   logs diffable. *)

open Rts_workload
module Stats = Rts_util.Stats
open Rts_core

let test_element_values_in_domain () =
  let g = Generator.create ~dim:2 ~seed:1 () in
  for _ = 1 to 5_000 do
    let e = Generator.element g in
    Alcotest.(check int) "dim" 2 (Array.length e.Types.value);
    Array.iter
      (fun x ->
        Alcotest.(check bool) "in [0, 1e5)" true (x >= 0. && x < Generator.domain))
      e.Types.value
  done

let test_weights_gaussian () =
  let g = Generator.create ~dim:1 ~seed:2 () in
  let xs = Array.init 20_000 (fun _ -> float_of_int (Generator.element g).Types.weight) in
  let s = Stats.summarize xs in
  Alcotest.(check bool) "all >= 1" true (s.min >= 1.);
  Alcotest.(check bool) "mean ~100" true (abs_float (s.mean -. 100.) < 1.);
  Alcotest.(check bool) "stddev ~15" true (abs_float (s.stddev -. 15.) < 1.)

let test_unit_weights () =
  let g = Generator.create ~dim:1 ~seed:3 ~unit_weights:true () in
  for _ = 1 to 1_000 do
    Alcotest.(check int) "w=1" 1 (Generator.element g).Types.weight
  done;
  Alcotest.(check (float 0.)) "mean weight" 1. (Generator.mean_weight g)

let test_rectangles_inside_domain () =
  List.iter
    (fun dim ->
      let g = Generator.create ~dim ~seed:4 () in
      for _ = 1 to 2_000 do
        let r = Generator.rectangle g in
        for k = 0 to dim - 1 do
          Alcotest.(check bool) "lo >= 0" true (r.Types.lo.(k) >= 0.);
          Alcotest.(check bool) "hi <= domain" true (r.Types.hi.(k) <= Generator.domain)
        done
      done)
    [ 1; 2; 3 ]

let test_rectangle_volume_10pct () =
  List.iter
    (fun dim ->
      let g = Generator.create ~dim ~seed:5 () in
      let r = Generator.rectangle g in
      let vol = ref 1. in
      for k = 0 to dim - 1 do
        vol := !vol *. (r.Types.hi.(k) -. r.Types.lo.(k))
      done;
      let frac = !vol /. (Generator.domain ** float_of_int dim) in
      Alcotest.(check bool)
        (Printf.sprintf "d=%d volume fraction ~0.1 (got %f)" dim frac)
        true
        (abs_float (frac -. 0.1) < 1e-9))
    [ 1; 2; 3 ]

let test_stab_probability_empirical () =
  (* A uniform element should stab ~10% of queries. *)
  let g = Generator.create ~dim:2 ~seed:6 () in
  Alcotest.(check (float 1e-9)) "predicted" 0.1 (Generator.expected_stab_probability g);
  let rects = List.init 300 (fun _ -> Generator.rectangle g) in
  let hits = ref 0 and trials = ref 0 in
  for _ = 1 to 2_000 do
    let e = Generator.element g in
    List.iter
      (fun r ->
        incr trials;
        if Types.rect_contains r e.Types.value then incr hits)
      rects
  done;
  let p = float_of_int !hits /. float_of_int !trials in
  Alcotest.(check bool) (Printf.sprintf "empirical ~0.1 (got %f)" p) true
    (abs_float (p -. 0.1) < 0.02)

let test_p_del_calibration () =
  (* P(survive expected maturity) must be 10%. *)
  let g = Generator.create ~dim:1 ~seed:7 () in
  let tau = 200_000 in
  let p = Generator.p_del g ~tau in
  let steps = float_of_int tau /. 10. in
  let survive = (1. -. p) ** steps in
  Alcotest.(check bool) (Printf.sprintf "survival ~0.1 (got %f)" survive) true
    (abs_float (survive -. 0.1) < 1e-6)

let test_lifetime_distribution () =
  let g = Generator.create ~dim:1 ~seed:8 () in
  let tau = 100_000 in
  (* fraction of lifetimes exceeding tau/10 should be ~10% *)
  let n = 20_000 in
  let long = ref 0 in
  for _ = 1 to n do
    if Generator.lifetime g ~tau > tau / 10 then incr long
  done;
  let frac = float_of_int !long /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "long-lived ~0.1 (got %f)" frac) true
    (abs_float (frac -. 0.1) < 0.02)

let test_zipf_values_in_domain_and_skewed () =
  let g = Generator.create ~value_dist:(Generator.Zipf 1.0) ~dim:1 ~seed:10 () in
  let counts = Hashtbl.create 64 in
  for _ = 1 to 20_000 do
    let e = Generator.element g in
    let x = e.Types.value.(0) in
    Alcotest.(check bool) "in domain" true (x >= 0. && x < Generator.domain);
    let bucket = int_of_float (x /. Generator.domain *. 100.) in
    Hashtbl.replace counts bucket (1 + Option.value ~default:0 (Hashtbl.find_opt counts bucket))
  done;
  (* skew: the hottest percentile bucket must be far above the mean load *)
  let max_count = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  Alcotest.(check bool)
    (Printf.sprintf "hot bucket %dx mean" (max_count * 100 / 20_000))
    true
    (max_count > 3 * (20_000 / 100))

let test_clustered_values () =
  let g = Generator.create ~value_dist:(Generator.Clustered 3) ~dim:2 ~seed:11 () in
  for _ = 1 to 5_000 do
    let e = Generator.element g in
    Array.iter
      (fun x -> Alcotest.(check bool) "in domain" true (x >= 0. && x < Generator.domain))
      e.Types.value
  done

let test_generator_determinism () =
  let a = Generator.create ~dim:2 ~seed:9 () in
  let b = Generator.create ~dim:2 ~seed:9 () in
  for _ = 1 to 500 do
    let ea = Generator.element a and eb = Generator.element b in
    Alcotest.(check bool) "same elements" true (ea = eb)
  done

(* ---- scenario driver ---- *)

let small_cfg =
  {
    Scenario.default with
    Scenario.initial_queries = 200;
    tau = 2_000;
    max_elements = 30_000;
    chunk = 256;
  }

let test_skewed_scenario_equivalence () =
  (* Engines must agree under skew just as under uniform. *)
  let cfg =
    { small_cfg with Scenario.value_dist = Generator.Zipf 1.1; initial_queries = 150 }
  in
  let r1 = Scenario.run cfg (fun ~dim -> Dt_engine.make ~dim) in
  let r2 = Scenario.run cfg (fun ~dim -> Baseline_engine.make ~dim) in
  Alcotest.(check (list (pair int int))) "dt = baseline under zipf" r2.maturity_log
    r1.maturity_log

let test_scenario_static_completes () =
  let r = Scenario.run small_cfg (fun ~dim -> Dt_engine.make ~dim) in
  Alcotest.(check int) "all queries accounted" r.registered (r.matured + r.terminated);
  Alcotest.(check bool) "some matured" true (r.matured > 0);
  Alcotest.(check bool) "some terminated" true (r.terminated > 0);
  Alcotest.(check bool) "stopped before cap" true (r.elements < small_cfg.max_elements);
  Alcotest.(check bool) "trace nonempty" true (Array.length r.trace > 1)

let test_scenario_maturity_rate () =
  (* p_del calibration: ~10% of queries should reach maturity. *)
  let cfg = { small_cfg with Scenario.initial_queries = 2_000; tau = 5_000; max_elements = 200_000 } in
  let r = Scenario.run cfg (fun ~dim -> Dt_engine.make ~dim) in
  let frac = float_of_int r.matured /. float_of_int r.registered in
  Alcotest.(check bool) (Printf.sprintf "maturity fraction ~0.1 (got %f)" frac) true
    (frac > 0.05 && frac < 0.2)

let test_scenario_engine_agnostic () =
  (* Same config, different engines: identical maturity logs. *)
  let r1 = Scenario.run small_cfg (fun ~dim -> Dt_engine.make ~dim) in
  let r2 = Scenario.run small_cfg (fun ~dim -> Baseline_engine.make ~dim) in
  let r3 = Scenario.run small_cfg (fun ~dim:_ -> Stab1d_engine.make ()) in
  Alcotest.(check (list (pair int int))) "dt = baseline" r2.maturity_log r1.maturity_log;
  Alcotest.(check (list (pair int int))) "stab = baseline" r2.maturity_log r3.maturity_log;
  Alcotest.(check int) "same terminations" r2.terminated r1.terminated;
  Alcotest.(check int) "same registrations" r2.registered r1.registered

let test_scenario_stochastic () =
  let cfg =
    {
      small_cfg with
      Scenario.mode = Scenario.Stochastic { p_ins = 0.3; horizon = 10_000 };
      max_elements = 15_000;
    }
  in
  let r1 = Scenario.run cfg (fun ~dim -> Dt_engine.make ~dim) in
  let r2 = Scenario.run cfg (fun ~dim -> Baseline_engine.make ~dim) in
  Alcotest.(check bool) "insertions happened" true
    (r1.registered > cfg.initial_queries + 2_000);
  Alcotest.(check (list (pair int int))) "dt = baseline" r2.maturity_log r1.maturity_log

let test_scenario_fixed_load () =
  let cfg =
    { small_cfg with Scenario.mode = Scenario.Fixed_load; max_elements = 15_000 }
  in
  let r1 = Scenario.run cfg (fun ~dim -> Dt_engine.make ~dim) in
  let r2 = Scenario.run cfg (fun ~dim -> Baseline_engine.make ~dim) in
  Alcotest.(check (list (pair int int))) "dt = baseline" r2.maturity_log r1.maturity_log;
  (* fixed load: alive count constant at the end of every chunk *)
  Array.iter
    (fun (tp : Scenario.trace_point) ->
      Alcotest.(check int) "constant alive" cfg.initial_queries tp.alive)
    r1.trace;
  Alcotest.(check bool) "replacements happened" true (r1.registered > cfg.initial_queries)

let test_scenario_2d () =
  let cfg = { small_cfg with Scenario.dim = 2; max_elements = 20_000 } in
  let r1 = Scenario.run cfg (fun ~dim -> Dt_engine.make ~dim) in
  let r2 = Scenario.run cfg (fun ~dim:_ -> Stab2d_engine.make ()) in
  let r3 = Scenario.run cfg (fun ~dim -> Rtree_engine.make ~dim) in
  Alcotest.(check (list (pair int int))) "dt = seg-intv" r2.maturity_log r1.maturity_log;
  Alcotest.(check (list (pair int int))) "dt = r-tree" r3.maturity_log r1.maturity_log

let test_scenario_deterministic () =
  let r1 = Scenario.run small_cfg (fun ~dim -> Dt_engine.make ~dim) in
  let r2 = Scenario.run small_cfg (fun ~dim -> Dt_engine.make ~dim) in
  Alcotest.(check (list (pair int int))) "replay" r1.maturity_log r2.maturity_log;
  Alcotest.(check int) "same ops" r1.ops r2.ops

(* Regression: diff_bench's drift column on zero-budget rows used to
   render the 0/0 division as -nan%; such rows must come out as text. *)
let test_drift_cell () =
  let cell budget actual = Rts_workload.Bench_targets.drift_cell ~budget ~actual in
  Alcotest.(check string) "zero budget met" "n/a" (cell 0.0 0.0);
  Alcotest.(check string) "zero budget exceeded" "OVER (zero budget)" (cell 0.0 3.0);
  Alcotest.(check string) "over" "+10.0%" (cell 100.0 110.0);
  Alcotest.(check string) "under" "-25.0%" (cell 100.0 75.0);
  Alcotest.(check string) "met exactly" "+0.0%" (cell 100.0 100.0);
  List.iter
    (fun (b, a) ->
      let s = cell b a in
      Alcotest.(check bool)
        (Printf.sprintf "no nan for budget=%g actual=%g" b a)
        false
        (let lower = String.lowercase_ascii s in
         (* substring check without Str: any rendered nan is a bug *)
         let rec has i =
           i + 3 <= String.length lower && (String.sub lower i 3 = "nan" || has (i + 1))
         in
         has 0))
    [ (0.0, 0.0); (0.0, 5.0); (1.0, 0.0); (7.0, 7.0) ]

let () =
  Alcotest.run "workload"
    [
      ( "generator",
        [
          Alcotest.test_case "element values in domain" `Quick test_element_values_in_domain;
          Alcotest.test_case "weights gaussian" `Quick test_weights_gaussian;
          Alcotest.test_case "unit weights" `Quick test_unit_weights;
          Alcotest.test_case "rectangles inside domain" `Quick test_rectangles_inside_domain;
          Alcotest.test_case "rectangle volume 10%" `Quick test_rectangle_volume_10pct;
          Alcotest.test_case "stab probability" `Quick test_stab_probability_empirical;
          Alcotest.test_case "p_del calibration" `Quick test_p_del_calibration;
          Alcotest.test_case "lifetime distribution" `Quick test_lifetime_distribution;
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
          Alcotest.test_case "zipf skew" `Quick test_zipf_values_in_domain_and_skewed;
          Alcotest.test_case "clustered values" `Quick test_clustered_values;
          Alcotest.test_case "skewed scenario equivalence" `Quick
            test_skewed_scenario_equivalence;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "static completes" `Quick test_scenario_static_completes;
          Alcotest.test_case "maturity rate ~10%" `Quick test_scenario_maturity_rate;
          Alcotest.test_case "engine agnostic" `Quick test_scenario_engine_agnostic;
          Alcotest.test_case "stochastic mode" `Quick test_scenario_stochastic;
          Alcotest.test_case "fixed load mode" `Quick test_scenario_fixed_load;
          Alcotest.test_case "2d scenario" `Quick test_scenario_2d;
          Alcotest.test_case "deterministic replay" `Quick test_scenario_deterministic;
        ] );
      ("bench-tools", [ Alcotest.test_case "drift cell rendering" `Quick test_drift_cell ]);
    ]
