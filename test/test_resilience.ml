(* Resilience layer: CRC-32 vectors, WAL torn-tail semantics, atomic
   checkpoint validation, recovery positioning — and the crash-equivalence
   property at the heart of the PR: for EVERY crash point (including torn
   writes, bit-flipped tails, crashes mid-checkpoint, and a corrupted
   newest checkpoint at rest), recovery plus continuation reproduces the
   uninterrupted run's maturity log bit for bit. *)

open Rts_core
open Rts_workload
open Rts_resilience
module Prng = Rts_util.Prng
module Crc32 = Rts_util.Crc32
module Metrics = Rts_obs.Metrics

let q ~id ~threshold (lo, hi) = { Types.id; rect = Types.interval lo hi; threshold }
let e v w = { Types.value = [| v |]; weight = w }

let rec drop n = function
  | rest when n <= 0 -> rest
  | [] -> []
  | _ :: rest -> drop (n - 1) rest

(* ------------------------------------------------------------------ *)
(* Crc32                                                               *)
(* ------------------------------------------------------------------ *)

let test_crc32_vectors () =
  Alcotest.(check string) "canonical zlib vector" "cbf43926"
    (Crc32.to_hex (Crc32.string "123456789"));
  Alcotest.(check string) "empty string" "00000000" (Crc32.to_hex (Crc32.string ""));
  Alcotest.(check bool) "incremental = whole" true
    (Crc32.string ~crc:(Crc32.string "12345") "6789" = Crc32.string "123456789");
  let s = "the quick brown fox" in
  Alcotest.(check bool) "substring = sub" true
    (Crc32.substring s ~pos:4 ~len:5 = Crc32.string (String.sub s 4 5))

let test_crc32_hex () =
  let c = Crc32.string "abc" in
  Alcotest.(check (option string)) "roundtrip" (Some (Crc32.to_hex c))
    (Option.map Crc32.to_hex (Crc32.of_hex (Crc32.to_hex c)));
  Alcotest.(check bool) "uppercase accepted" true
    (Crc32.of_hex "CBF43926" = Some (Crc32.string "123456789"));
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true (Crc32.of_hex s = None))
    [ "cbf4392"; "cbf439261"; "zzzzzzzz"; ""; "cbf4 926" ]

(* ------------------------------------------------------------------ *)
(* Wal                                                                 *)
(* ------------------------------------------------------------------ *)

let sample_ops =
  [
    Replay.Register (q ~id:1 ~threshold:3 (0., 10.));
    Replay.Element (e 5. 2);
    Replay.Register (q ~id:2 ~threshold:2 (0., 4.));
    Replay.Terminate 2;
    Replay.Element (e 1. 1);
  ]

let test_wal_roundtrip () =
  let dir = Io.mem_dir () in
  let w = Wal.writer ~dim:1 ~dir () in
  List.iter (Wal.append w) sample_ops;
  Wal.close w;
  let s = Wal.scan ~dim:1 ~dir () in
  Alcotest.(check int) "records" 5 s.Wal.records;
  Alcotest.(check int) "no discard" 0 s.Wal.bytes_discarded;
  Alcotest.(check bool) "ops identical" true (s.Wal.ops = sample_ops)

let test_wal_torn_tail () =
  let image = String.concat "" (List.map Wal.frame sample_ops) in
  (* cut mid-way through the final record *)
  let torn = String.sub image 0 (String.length image - 4) in
  let s = Wal.scan_string ~dim:1 torn in
  Alcotest.(check int) "prefix records" 4 s.Wal.records;
  Alcotest.(check bool) "discarded tail" true (s.Wal.bytes_discarded > 0);
  Alcotest.(check int) "accounting" (String.length torn)
    (s.Wal.valid_bytes + s.Wal.bytes_discarded);
  Alcotest.(check bool) "ops = prefix" true
    (s.Wal.ops = List.filteri (fun i _ -> i < 4) sample_ops)

let test_wal_bit_flip_stops_scan () =
  let image = String.concat "" (List.map Wal.frame sample_ops) in
  let frames = List.map Wal.frame sample_ops in
  (* flip a bit inside the third record's payload *)
  let off =
    String.length (List.nth frames 0) + String.length (List.nth frames 1) + 8
  in
  let b = Bytes.of_string image in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x10));
  let s = Wal.scan_string ~dim:1 (Bytes.to_string b) in
  Alcotest.(check bool) "scan stops at the damaged record" true (s.Wal.records <= 2);
  Alcotest.(check bool) "tail reported" true (s.Wal.bytes_discarded > 0)

let test_wal_scan_garbage_and_empty () =
  let s = Wal.scan_string ~dim:1 "complete garbage\nmore garbage" in
  Alcotest.(check int) "garbage: no records" 0 s.Wal.records;
  Alcotest.(check bool) "garbage: all discarded" true (s.Wal.bytes_discarded > 0);
  let s = Wal.scan_string ~dim:1 "" in
  Alcotest.(check int) "empty: no records" 0 s.Wal.records;
  let dir = Io.mem_dir () in
  let s = Wal.scan ~dim:1 ~dir () in
  Alcotest.(check int) "absent file: no records" 0 s.Wal.records

let test_wal_writer_truncates_torn_tail_on_open () =
  let dir = Io.mem_dir () in
  let w = Wal.writer ~dim:1 ~dir () in
  List.iter (Wal.append w) (List.filteri (fun i _ -> i < 3) sample_ops);
  Wal.close w;
  (* simulate a crash that left half a record behind *)
  let f = dir.Io.open_append Wal.default_file in
  f.Io.append "17,deadbeef,E,0.5";
  f.Io.close ();
  let w = Wal.writer ~dim:1 ~dir () in
  let ex = Wal.existing w in
  Alcotest.(check int) "opening scan sees intact prefix" 3 ex.Wal.records;
  Alcotest.(check bool) "opening scan reports the tail" true (ex.Wal.bytes_discarded > 0);
  List.iter (Wal.append w) (drop 3 sample_ops);
  Wal.close w;
  let s = Wal.scan ~dim:1 ~dir () in
  Alcotest.(check int) "tail amputated, appends extend the prefix" 5 s.Wal.records;
  Alcotest.(check bool) "full trace back" true (s.Wal.ops = sample_ops);
  Alcotest.(check int) "nothing left over" 0 s.Wal.bytes_discarded

(* ------------------------------------------------------------------ *)
(* Segmented WAL: rotation, pruning, epoch fencing                     *)
(* ------------------------------------------------------------------ *)

let test_wal_rotation_roundtrip () =
  let dir = Io.mem_dir () in
  let w = Wal.writer ~dim:1 ~segment_records:2 ~dir () in
  List.iter (Wal.append w) sample_ops;
  Wal.close w;
  Alcotest.(check int) "two segments sealed" 2 (Wal.rotations w);
  (match Wal.segments ~dir () with
  | [ s1; s2 ] ->
      Alcotest.(check int) "first base" 0 s1.Wal.seg_base;
      Alcotest.(check int) "first count" 2 s1.Wal.seg_count;
      Alcotest.(check int) "second base" 2 s2.Wal.seg_base;
      Alcotest.(check int) "second count" 2 s2.Wal.seg_count
  | segs -> Alcotest.failf "expected 2 segments, got %d" (List.length segs));
  let s = Wal.scan ~dim:1 ~dir () in
  Alcotest.(check int) "chain records" 5 s.Wal.records;
  Alcotest.(check int) "chain base" 0 s.Wal.base;
  Alcotest.(check bool) "ops identical across the chain" true (s.Wal.ops = sample_ops);
  (* reopening continues the chain where it left off *)
  let w2 = Wal.writer ~dim:1 ~segment_records:2 ~dir () in
  Wal.append w2 (Replay.Element (e 2. 1));
  Wal.close w2;
  let s = Wal.scan ~dim:1 ~dir () in
  Alcotest.(check int) "append extends the chain" 6 s.Wal.records;
  Alcotest.(check bool) "suffix is the new op" true
    (s.Wal.ops = sample_ops @ [ Replay.Element (e 2. 1) ])

let test_wal_prune_below_floor () =
  let dir = Io.mem_dir () in
  let w = Wal.writer ~dim:1 ~dir () in
  List.iter (Wal.append w) (List.filteri (fun i _ -> i < 3) sample_ops);
  Wal.rotate w;
  List.iter (Wal.append w) (drop 3 sample_ops);
  Wal.close w;
  Alcotest.(check int) "one sealed segment" 1 (List.length (Wal.segments ~dir ()));
  (* a floor inside the segment reclaims nothing: pruning is whole
     segments only, never record surgery *)
  Alcotest.(check int) "partial floor removes nothing" 0 (Wal.prune ~dir ~below:2 ());
  Alcotest.(check int) "covering floor removes the segment" 1 (Wal.prune ~dir ~below:3 ());
  Alcotest.(check int) "no cold segments left" 0 (List.length (Wal.segments ~dir ()));
  let s = Wal.scan ~dim:1 ~dir () in
  Alcotest.(check int) "surviving records" 2 s.Wal.records;
  Alcotest.(check int) "base reflects the pruned prefix" 3 s.Wal.base;
  Alcotest.(check bool) "surviving ops are the suffix" true (s.Wal.ops = drop 3 sample_ops)

let test_wal_epoch_fencing () =
  let dir = Io.mem_dir () in
  let w = Wal.writer ~dim:1 ~epoch:3 ~dir () in
  List.iter (Wal.append w) sample_ops;
  Wal.close w;
  Alcotest.(check int) "epoch stamped in the chain" 3 (Wal.scan ~dim:1 ~dir ()).Wal.epoch;
  (match Wal.writer ~dim:1 ~epoch:2 ~dir () with
  | exception Wal.Fenced { requested = 2; found = 3 } -> ()
  | exception Wal.Fenced _ -> Alcotest.fail "Fenced carried the wrong epochs"
  | _ -> Alcotest.fail "a stale incarnation must be fenced");
  (* no epoch argument inherits the chain's *)
  let w = Wal.writer ~dim:1 ~dir () in
  Alcotest.(check int) "inherited epoch" 3 (Wal.epoch w);
  Wal.append w (Replay.Element (e 1. 1));
  Wal.close w;
  (* a successor with a higher epoch takes over and keeps the history *)
  let w = Wal.writer ~dim:1 ~epoch:7 ~dir () in
  Wal.append w (Replay.Element (e 2. 1));
  Wal.close w;
  let s = Wal.scan ~dim:1 ~dir () in
  Alcotest.(check int) "chain carries the successor epoch" 7 s.Wal.epoch;
  Alcotest.(check int) "nothing lost across the takeover" 7 s.Wal.records

let test_wal_rotation_crash_overlap () =
  (* simulate a crash between rotate's two atomic steps: the sealed
     segment exists AND the active file still holds the records it
     sealed. Scan and writer must both resolve toward the sealed copy. *)
  let a = Io.mem_dir () in
  let w = Wal.writer ~dim:1 ~segment_records:3 ~dir:a () in
  List.iter (Wal.append w) sample_ops;
  Wal.close w;
  let seg_name = Wal.segment_name 0 in
  let seg = Option.get (a.Io.read_file seg_name) in
  let b = Io.mem_dir () in
  b.Io.write_atomic seg_name seg;
  (* pre-rotation active image: all five records, headerless (base 0) *)
  let f = b.Io.open_append Wal.default_file in
  List.iter (fun op -> f.Io.append (Wal.frame op)) sample_ops;
  f.Io.close ();
  let s = Wal.scan ~dim:1 ~dir:b () in
  Alcotest.(check int) "overlap deduplicated" 5 s.Wal.records;
  Alcotest.(check bool) "each op appears once" true (s.Wal.ops = sample_ops);
  let w = Wal.writer ~dim:1 ~dir:b () in
  Alcotest.(check int) "opening scan agrees" 5 (Wal.existing w).Wal.records;
  Wal.append w (Replay.Element (e 9. 1));
  Wal.close w;
  let s = Wal.scan ~dim:1 ~dir:b () in
  Alcotest.(check int) "append extends past the resolved overlap" 6 s.Wal.records;
  Alcotest.(check bool) "no duplicated prefix" true
    (s.Wal.ops = sample_ops @ [ Replay.Element (e 9. 1) ])

let test_fsync_dir_errno_classifier () =
  (* "directory fsync unsupported" errnos are swallowed; real I/O
     failures must raise — a checkpoint rename that never reached
     stable storage is data loss, not an inconvenience *)
  List.iter
    (fun err -> Alcotest.(check bool) "benign errno swallowed" false (Io.fatal_fsync_error err))
    [
      Unix.EINVAL; Unix.EBADF; Unix.ENOSYS; Unix.EOPNOTSUPP; Unix.EROFS;
      Unix.EACCES; Unix.EPERM; Unix.ENOTDIR; Unix.ENOENT;
    ];
  List.iter
    (fun err -> Alcotest.(check bool) "fatal errno raises" true (Io.fatal_fsync_error err))
    [ Unix.EIO; Unix.ENOSPC; Unix.EUNKNOWNERR 122 ];
  (* a real directory fsyncs without noise; a missing path is a no-op *)
  Io.fsync_dir (Filename.get_temp_dir_name ());
  Io.fsync_dir "/definitely/not/a/real/path"

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)
(* ------------------------------------------------------------------ *)

let sample_entries =
  [ (q ~id:1 ~threshold:7 (0., 10.), 4); (q ~id:5 ~threshold:2 (3., 4.5), 0) ]

let test_checkpoint_roundtrip () =
  let dir = Io.mem_dir () in
  let name = Checkpoint.write ~dir ~gen:3 ~dim:1 ~ops:10 ~elements:7 sample_entries in
  Alcotest.(check string) "file name" (Checkpoint.filename 3) name;
  let meta, entries = Checkpoint.load ~dir name in
  Alcotest.(check int) "gen" 3 meta.Checkpoint.gen;
  Alcotest.(check int) "dim" 1 meta.Checkpoint.dim;
  Alcotest.(check int) "ops" 10 meta.Checkpoint.ops;
  Alcotest.(check int) "elements" 7 meta.Checkpoint.elements;
  Alcotest.(check int) "count" 2 meta.Checkpoint.count;
  Alcotest.(check bool) "entries identical" true (entries = sample_entries);
  let meta', entries' = Checkpoint.load ~dir (Checkpoint.filename 3) in
  Alcotest.(check bool) "load is stable" true (meta' = meta && entries' = entries)

let expect_corrupt label f =
  match f () with
  | exception Checkpoint.Corrupt _ -> ()
  | _ -> Alcotest.fail (label ^ ": should raise Corrupt")

(* No single-bit flip anywhere in the file — header metadata included —
   may yield a DIFFERENT valid checkpoint. This is what the
   header-covering CRC buys: a flipped [ops] digit can no longer
   masquerade as a valid checkpoint at the wrong position. (The one
   benign flip: the case bit of a hex letter in the CRC field itself,
   which parses to the same value — the loaded state is bit-identical,
   so it is allowed to succeed.) *)
let test_checkpoint_detects_every_bit_flip () =
  let dir = Io.mem_dir () in
  let name = Checkpoint.write ~dir ~gen:0 ~dim:1 ~ops:10 ~elements:7 sample_entries in
  let image = Option.get (dir.Io.read_file name) in
  let original = Checkpoint.load ~dir name in
  for byte = 0 to String.length image - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string image in
      Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
      let d = Io.mem_dir () in
      d.Io.write_atomic name (Bytes.to_string b);
      match Checkpoint.load ~dir:d name with
      | exception Checkpoint.Corrupt _ -> ()
      | loaded ->
          if loaded <> original then
            Alcotest.failf "bit %d of byte %d: flip yielded a different valid checkpoint"
              bit byte
    done
  done

let test_checkpoint_detects_every_truncation () =
  let dir = Io.mem_dir () in
  let name = Checkpoint.write ~dir ~gen:0 ~dim:1 ~ops:10 ~elements:7 sample_entries in
  let image = Option.get (dir.Io.read_file name) in
  for len = 0 to String.length image - 1 do
    let d = Io.mem_dir () in
    d.Io.write_atomic name (String.sub image 0 len);
    expect_corrupt (Printf.sprintf "truncated to %d bytes" len) (fun () ->
        Checkpoint.load ~dir:d name)
  done

let test_checkpoint_semantic_validation () =
  let dir = Io.mem_dir () in
  expect_corrupt "missing file" (fun () -> Checkpoint.load ~dir "nope.ckpt");
  (* consumed >= threshold is nonsense: the query would already have matured *)
  let name =
    Checkpoint.write ~dir ~gen:0 ~dim:1 ~ops:1 ~elements:0
      [ (q ~id:1 ~threshold:3 (0., 1.), 3) ]
  in
  expect_corrupt "consumed >= threshold" (fun () -> Checkpoint.load ~dir name);
  let name =
    Checkpoint.write ~dir ~gen:1 ~dim:1 ~ops:2 ~elements:0
      [ (q ~id:1 ~threshold:3 (0., 1.), 0); (q ~id:1 ~threshold:5 (0., 2.), 1) ]
  in
  expect_corrupt "duplicate id" (fun () -> Checkpoint.load ~dir name)

let test_checkpoint_generations_and_prune () =
  let dir = Io.mem_dir () in
  List.iter
    (fun g -> ignore (Checkpoint.write ~dir ~gen:g ~dim:1 ~ops:g ~elements:0 []))
    [ 0; 1; 2; 3; 4 ];
  let f = dir.Io.open_append "checkpoint-leftover.tmp" in
  f.Io.append "interrupted atomic write";
  f.Io.close ();
  Alcotest.(check (list int)) "newest first" [ 4; 3; 2; 1; 0 ]
    (List.map fst (Checkpoint.generations ~dir));
  Checkpoint.prune ~dir ~keep:2;
  Alcotest.(check (list int)) "kept newest two" [ 4; 3 ]
    (List.map fst (Checkpoint.generations ~dir));
  Alcotest.(check bool) "tmp swept" true
    (not (List.mem "checkpoint-leftover.tmp" (dir.Io.list_files ())))

(* ------------------------------------------------------------------ *)
(* Recovery (hand-built cases)                                         *)
(* ------------------------------------------------------------------ *)

let make_baseline ~dim = Baseline_engine.make ~dim
let make_dt ~dim = Dt_engine.make ~dim

let test_recover_empty_dir () =
  let dir = Io.mem_dir () in
  let engine, r = Recovery.recover ~dim:1 ~make:make_baseline ~dir () in
  Alcotest.(check int) "no queries" 0 (engine.Engine.alive ());
  Alcotest.(check bool) "no checkpoint" true (r.Recovery.checkpoint_gen = None);
  Alcotest.(check int) "nothing durable" 0 r.Recovery.ops_total;
  Alcotest.(check int) "no maturities" 0 (List.length r.Recovery.maturities)

(* register q1(thr 4); E w2; E miss; [checkpoint @ ops 3, elements 2];
   E w2 -> matures q1 at global element ordinal 3. *)
let populated_dir () =
  let dir = Io.mem_dir () in
  let cfg = { Durable.fsync_every = 1; checkpoint_every = 3; keep = 2 } in
  let durable, h = Durable.wrap ~config:cfg ~dir (Baseline_engine.make ~dim:1) in
  durable.Engine.register (q ~id:1 ~threshold:4 (0., 10.));
  ignore (durable.Engine.process (e 5. 2));
  ignore (durable.Engine.process (e 20. 9));
  let matured = durable.Engine.process (e 5. 2) in
  Alcotest.(check (list int)) "q1 matured live" [ 1 ] matured;
  Durable.close h;
  dir

let test_recover_checkpoint_plus_wal_suffix () =
  let dir = populated_dir () in
  let engine, r = Recovery.recover ~dim:1 ~make:make_dt ~dir () in
  Alcotest.(check bool) "restored from gen 0" true (r.Recovery.checkpoint_gen = Some 0);
  Alcotest.(check int) "checkpoint ops" 3 r.Recovery.checkpoint_ops;
  Alcotest.(check int) "checkpoint elements" 2 r.Recovery.checkpoint_elements;
  Alcotest.(check int) "wal records" 4 r.Recovery.wal_records;
  Alcotest.(check int) "replayed past checkpoint" 1 r.Recovery.ops_replayed;
  Alcotest.(check int) "durable ops" 4 r.Recovery.ops_total;
  Alcotest.(check int) "durable elements" 3 r.Recovery.elements_total;
  Alcotest.(check (list (pair int int))) "maturity re-fired at global ordinal" [ (3, 1) ]
    r.Recovery.maturities;
  Alcotest.(check int) "q1 gone" 0 (engine.Engine.alive ())

let test_recover_skips_corrupt_newest_checkpoint () =
  let dir = populated_dir () in
  let rng = Prng.create ~seed:99 in
  (match Checkpoint.generations ~dir with
  | (_, name) :: _ -> Alcotest.(check bool) "flipped" true (Fault.flip_random_bit ~rng dir name)
  | [] -> Alcotest.fail "expected a checkpoint");
  let engine, r = Recovery.recover ~dim:1 ~make:make_baseline ~dir () in
  Alcotest.(check int) "corrupt generation skipped" 1 r.Recovery.generations_skipped;
  Alcotest.(check bool) "fell back to scratch" true (r.Recovery.checkpoint_gen = None);
  Alcotest.(check int) "full WAL replayed" 4 r.Recovery.ops_replayed;
  Alcotest.(check (list (pair int int))) "same maturity log from scratch" [ (3, 1) ]
    r.Recovery.maturities;
  Alcotest.(check int) "q1 gone" 0 (engine.Engine.alive ())

(* the populated_dir trace again, but over a rotating WAL: cold
   segments every 2 records, checkpoint at op 3 *)
let segmented_dir () =
  let dir = Io.mem_dir () in
  let cfg = { Durable.fsync_every = 1; checkpoint_every = 3; keep = 2 } in
  let durable, h =
    Durable.wrap ~config:cfg ~segment_records:2 ~dir (Baseline_engine.make ~dim:1)
  in
  durable.Engine.register (q ~id:1 ~threshold:4 (0., 10.));
  ignore (durable.Engine.process (e 5. 2));
  ignore (durable.Engine.process (e 20. 9));
  let matured = durable.Engine.process (e 5. 2) in
  Alcotest.(check (list int)) "q1 matured live" [ 1 ] matured;
  (h, dir)

let test_recover_checkpoint_only_dir () =
  let h, dir = segmented_dir () in
  (* publish a checkpoint covering everything, then prune: the whole
     WAL history is rotated away — only checkpoints and a bare active
     header remain on disk *)
  Durable.checkpoint_now h;
  Durable.rotate_wal h;
  Alcotest.(check bool) "segments pruned" true (Durable.prune_wal h ~below:max_int > 0);
  Durable.close h;
  Alcotest.(check int) "no cold segments left" 0 (List.length (Wal.segments ~dir ()));
  let s = Wal.scan ~dim:1 ~dir () in
  Alcotest.(check int) "no records left" 0 s.Wal.records;
  Alcotest.(check int) "chain base = durable ops" 4 s.Wal.base;
  let engine, r = Recovery.recover ~dim:1 ~make:make_dt ~dir () in
  Alcotest.(check bool) "restored from a checkpoint" true (r.Recovery.checkpoint_gen <> None);
  Alcotest.(check int) "nothing to replay" 0 r.Recovery.ops_replayed;
  Alcotest.(check int) "resumes after the checkpointed ops" 4 r.Recovery.ops_total;
  Alcotest.(check int) "element ordinal restored" 3 r.Recovery.elements_total;
  Alcotest.(check (list (pair int int))) "no replayed maturities" [] r.Recovery.maturities;
  Alcotest.(check int) "q1 matured before the checkpoint" 0 (engine.Engine.alive ());
  (* continuation over the pruned chain (base > 0) carries the report
     and keeps global element ordinals intact *)
  let cfg = { Durable.fsync_every = 1; checkpoint_every = 100; keep = 2 } in
  let durable2, h2 = Durable.wrap ~config:cfg ~report:r ~segment_records:2 ~dir engine in
  durable2.Engine.register (q ~id:2 ~threshold:3 (0., 10.));
  let m = durable2.Engine.process (e 5. 3) in
  Alcotest.(check (list int)) "continuation matures" [ 2 ] m;
  Durable.close h2;
  let _, r2 = Recovery.recover ~dim:1 ~make:make_dt ~dir () in
  Alcotest.(check int) "chain replays only the continuation" 2 r2.Recovery.ops_replayed;
  Alcotest.(check (list (pair int int)))
    "maturity re-fired at the global ordinal" [ (4, 2) ] r2.Recovery.maturities

let test_recover_empty_newest_segment () =
  let h, dir = segmented_dir () in
  (* the newest link of the chain — the active file — is a bare header:
     the last append landed exactly on a rotation boundary *)
  Durable.rotate_wal h;
  Durable.close h;
  let s = Wal.scan ~dim:1 ~dir () in
  Alcotest.(check int) "records intact in cold segments" 4 s.Wal.records;
  Alcotest.(check int) "active file holds nothing" 2
    (List.length (Wal.segments ~dir ()));
  let engine, r = Recovery.recover ~dim:1 ~make:make_baseline ~dir () in
  Alcotest.(check bool) "restored from gen 0" true (r.Recovery.checkpoint_gen = Some 0);
  Alcotest.(check int) "replayed the post-checkpoint suffix" 1 r.Recovery.ops_replayed;
  Alcotest.(check int) "durable ops" 4 r.Recovery.ops_total;
  Alcotest.(check (list (pair int int))) "maturity re-fired" [ (3, 1) ]
    r.Recovery.maturities;
  Alcotest.(check int) "q1 gone" 0 (engine.Engine.alive ())

let test_recover_dim_mismatch () =
  let dir = Io.mem_dir () in
  ignore (Checkpoint.write ~dir ~gen:0 ~dim:2 ~ops:0 ~elements:0 []);
  match Recovery.recover ~dim:1 ~make:make_baseline ~dir () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dimension mismatch should raise"

let test_recovery_metrics () =
  let dir = populated_dir () in
  let _, r = Recovery.recover ~dim:1 ~make:make_baseline ~dir () in
  let m = Recovery.metrics r in
  Alcotest.(check int) "ops replayed" 1 (Metrics.counter_value m "recovery_ops_replayed");
  Alcotest.(check int) "bytes discarded" 0 (Metrics.counter_value m "recovery_bytes_discarded");
  Alcotest.(check int) "generations skipped" 0
    (Metrics.counter_value m "recovery_generations_skipped");
  Alcotest.(check bool) "gen gauge" true
    (Metrics.get m "recovery_checkpoint_gen" = Some (Metrics.Gauge 0.))

(* ------------------------------------------------------------------ *)
(* Durable wrapper                                                     *)
(* ------------------------------------------------------------------ *)

(* Building valid terminate ops requires knowing maturities; record from
   a live engine (same recipe as test_replay). *)
let trace seed steps =
  let log = ref [] in
  let engine =
    Replay.recording ~sink:(fun op -> log := op :: !log) (Baseline_engine.make ~dim:1)
  in
  let rng = Prng.create ~seed in
  let alive = ref [] and next = ref 0 in
  for _ = 1 to steps do
    if Prng.bernoulli rng 0.2 || !alive = [] then begin
      let a = float_of_int (Prng.int rng 20) in
      engine.Engine.register
        (q ~id:!next ~threshold:(1 + Prng.int rng 40)
           (a, a +. 1. +. float_of_int (Prng.int rng 10)));
      alive := !next :: !alive;
      incr next
    end;
    if !alive <> [] && Prng.bernoulli rng 0.05 then begin
      let v = List.nth !alive (Prng.int rng (List.length !alive)) in
      engine.Engine.terminate v;
      alive := List.filter (fun i -> i <> v) !alive
    end;
    let matured =
      engine.Engine.process
        { Types.value = [| float_of_int (Prng.int rng 25) |]; weight = 1 + Prng.int rng 5 }
    in
    alive := List.filter (fun i -> not (List.mem i matured)) !alive
  done;
  List.rev !log

let test_durable_is_transparent () =
  let ops = trace 7 400 in
  let reference = Replay.replay_ops (Baseline_engine.make ~dim:1) ops in
  let dir = Io.mem_dir () in
  let cfg = { Durable.fsync_every = 4; checkpoint_every = 64; keep = 2 } in
  let durable, h = Durable.wrap ~config:cfg ~dir (Dt_engine.make ~dim:1) in
  let o = Replay.replay_ops durable ops in
  Alcotest.(check (list (pair int int))) "maturity log unchanged"
    reference.Replay.maturities o.Replay.maturities;
  let m = durable.Engine.metrics () in
  Alcotest.(check int) "every op logged" (List.length ops)
    (Metrics.counter_value m "wal_records_total");
  Alcotest.(check bool) "checkpoints taken" true
    (Metrics.counter_value m "checkpoints_total" >= List.length ops / 64);
  Alcotest.(check bool) "fsyncs batched" true
    (Metrics.counter_value m "wal_fsyncs_total" < List.length ops);
  Durable.close h;
  let s = Wal.scan ~dim:1 ~dir () in
  Alcotest.(check int) "all records durable after close" (List.length ops) s.Wal.records;
  Alcotest.(check bool) "log is the trace" true (s.Wal.ops = ops)

let test_durable_register_batch_checkpoint_boundary () =
  (* A checkpoint may only cover op counts at batch boundaries: taking
     one mid-batch would replay the batch's tail over already-live ids. *)
  let dir = Io.mem_dir () in
  let cfg = { Durable.fsync_every = 1; checkpoint_every = 2; keep = 4 } in
  let durable, h = Durable.wrap ~config:cfg ~dir (Baseline_engine.make ~dim:1) in
  durable.Engine.register_batch
    (List.map (fun id -> q ~id ~threshold:5 (0., 10.)) [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check int) "one checkpoint for the whole batch" 1
    (Metrics.counter_value (durable.Engine.metrics ()) "checkpoints_total");
  Durable.close h;
  let engine, r = Recovery.recover ~dim:1 ~make:make_baseline ~dir () in
  Alcotest.(check int) "checkpoint covers the full batch" 5 r.Recovery.checkpoint_ops;
  Alcotest.(check int) "all five alive" 5 (engine.Engine.alive ());
  Alcotest.(check int) "nothing replayed twice" 0 r.Recovery.ops_replayed

let test_durable_bad_config () =
  let dir = Io.mem_dir () in
  let bad cfg =
    match Durable.wrap ~config:cfg ~dir (Baseline_engine.make ~dim:1) with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "bad config should raise"
  in
  bad { Durable.fsync_every = 0; checkpoint_every = 1; keep = 1 };
  bad { Durable.fsync_every = 1; checkpoint_every = 0; keep = 1 };
  bad { Durable.fsync_every = 1; checkpoint_every = 1; keep = 0 }

(* ------------------------------------------------------------------ *)
(* Crash equivalence                                                   *)
(* ------------------------------------------------------------------ *)

(* Feed ops one by one, collecting (global element ordinal, id)
   maturities, stopping silently at the simulated Crash. Returns the log
   and the number of elements whose processing COMPLETED (an op killed
   mid-flight never returns its maturities to the caller, exactly like a
   real producer). *)
let feed engine ops ~base =
  let log = ref [] and elems = ref base in
  (try
     List.iter
       (fun op ->
         match op with
         | Replay.Element el ->
             let matured = engine.Engine.process el in
             incr elems;
             List.iter (fun id -> log := (!elems, id) :: !log) matured
         | Replay.Register qq -> engine.Engine.register qq
         | Replay.Terminate id -> engine.Engine.terminate id)
       ops
   with Fault.Crash _ -> ());
  (List.rev !log, !elems)

type crash_case = {
  trace_seed : int;
  fault_seed : int;
  nops : int;
  crash_at : int;
  torn : bool;
  bit_flip : bool;
  crash_at_atomic : int option;
  damage_checkpoint : bool;
  checkpoint_every : int;
  fsync_every : int;
  engine : string; (* "baseline" | "dt" *)
}

let pp_case c =
  Printf.sprintf
    "trace_seed=%d fault_seed=%d nops=%d crash_at=%d torn=%b bit_flip=%b atomic=%s \
     damage_ckpt=%b ckpt_every=%d fsync_every=%d engine=%s"
    c.trace_seed c.fault_seed c.nops c.crash_at c.torn c.bit_flip
    (match c.crash_at_atomic with None -> "-" | Some k -> string_of_int k)
    c.damage_checkpoint c.checkpoint_every c.fsync_every c.engine

(* The property. One full crash/recovery/continuation cycle:

   1. run the trace through a Durable engine over a fault-injected
      mem_dir until the simulated machine dies;
   2. check the pre-crash live maturity log matched the reference;
   3. optionally flip a random bit of the newest checkpoint at rest;
   4. recover from what survived;
   5. resume the trace from [report.ops_total + 1] through a fresh
      Durable wrapper over the same store;
   6. the replayed + continued maturity log must equal the reference
      log restricted to ordinals past the restored checkpoint. *)
let run_crash_case c =
  let make = if c.engine = "dt" then make_dt else make_baseline in
  let ops = trace c.trace_seed c.nops in
  let reference = Replay.replay_ops (Baseline_engine.make ~dim:1) ops in
  let store = Io.mem_dir () in
  let rng = Prng.create ~seed:c.fault_seed in
  let fdir =
    Fault.wrap ~rng
      {
        Fault.no_crash with
        Fault.crash_at_append = c.crash_at;
        torn = c.torn;
        bit_flip = c.bit_flip;
        crash_at_atomic = c.crash_at_atomic;
      }
      store
  in
  let cfg =
    { Durable.fsync_every = c.fsync_every; checkpoint_every = c.checkpoint_every; keep = 2 }
  in
  let durable, _h = Durable.wrap ~config:cfg ~dir:fdir (make ~dim:1) in
  let pre_log, pre_elems = feed durable ops ~base:0 in
  let expected_pre =
    List.filter (fun (o, _) -> o <= pre_elems) reference.Replay.maturities
  in
  if pre_log <> expected_pre then
    Alcotest.failf "%s: pre-crash log diverged from reference" (pp_case c);
  if c.damage_checkpoint then
    (match Checkpoint.generations ~dir:store with
    | (_, name) :: _ -> ignore (Fault.flip_random_bit ~rng store name)
    | [] -> ());
  let engine2, report = Recovery.recover ~dim:1 ~make ~dir:store () in
  let durable2, h2 = Durable.wrap ~config:cfg ~report ~dir:store engine2 in
  let suffix = drop report.Recovery.ops_total ops in
  let cont_log, _ = feed durable2 suffix ~base:report.Recovery.elements_total in
  Durable.close h2;
  let expected =
    List.filter
      (fun (o, _) -> o > report.Recovery.checkpoint_elements)
      reference.Replay.maturities
  in
  let got = report.Recovery.maturities @ cont_log in
  if got <> expected then
    Alcotest.failf "%s: recovered log diverged (expected %d maturities, got %d)" (pp_case c)
      (List.length expected) (List.length got);
  report

(* Exhaustive sweep: crash at EVERY append boundary of the trace, for
   each fixed seed, cycling torn/bit-flip so all damage shapes appear at
   many positions. Seeds are overridable via RTS_FAULT_SEEDS (used by
   `make check-fault` to pin the CI set). *)
let fault_seeds () =
  match Sys.getenv_opt "RTS_FAULT_SEEDS" with
  | Some s ->
      String.split_on_char ',' s
      |> List.filter_map (fun x -> int_of_string_opt (String.trim x))
  | None -> [ 11; 23; 47 ]

let test_crash_equivalence_exhaustive () =
  let nops = 60 in
  List.iter
    (fun seed ->
      let total = List.length (trace seed nops) in
      for crash_at = 1 to total + 1 do
        ignore
          (run_crash_case
             {
               trace_seed = seed;
               fault_seed = (seed * 7919) + crash_at;
               nops;
               crash_at;
               torn = crash_at mod 2 = 0;
               bit_flip = crash_at mod 3 = 0;
               crash_at_atomic = None;
               damage_checkpoint = crash_at mod 5 = 0;
               checkpoint_every = 7;
               fsync_every = 3;
               engine = (if crash_at mod 2 = 0 then "dt" else "baseline");
             })
      done)
    (fault_seeds ())

let test_crash_during_checkpoint_publication () =
  (* Die inside write_atomic: the checkpoint either never existed or
     fully landed — recovery must cope with both (the PRNG coin picks). *)
  List.iter
    (fun (fault_seed, atomic_k) ->
      let r =
        run_crash_case
          {
            trace_seed = 23;
            fault_seed;
            nops = 60;
            crash_at = max_int;
            torn = false;
            bit_flip = false;
            crash_at_atomic = Some atomic_k;
            damage_checkpoint = false;
            checkpoint_every = 7;
            fsync_every = 1;
            engine = "dt";
          }
      in
      ignore r)
    [ (1, 1); (2, 1); (3, 2); (4, 2); (5, 3); (6, 3); (7, 4); (8, 4) ]

(* ------------------------------------------------------------------ *)
(* Silent short writes & disk full                                     *)
(* ------------------------------------------------------------------ *)

let test_short_write_final_record_amputated () =
  (* A silently short-written FINAL record is indistinguishable from a
     torn tail: the scanner amputates it and recovery resumes one op
     earlier. No error is ever raised at write time — that is the point. *)
  let store = Io.mem_dir () in
  let rng = Prng.create ~seed:42 in
  let fdir =
    Fault.wrap ~rng
      { Fault.no_crash with Fault.short_at_append = Some (List.length sample_ops) }
      store
  in
  let w = Wal.writer ~dim:1 ~dir:fdir () in
  List.iter (Wal.append w) sample_ops;
  Wal.close w;
  (* the writer believes all five landed *)
  Alcotest.(check int) "writer counted every append" 5 (Wal.appended w);
  let s = Wal.scan ~dim:1 ~dir:store () in
  Alcotest.(check int) "scanner amputates the short final record" 4 s.Wal.records;
  Alcotest.(check bool) "surviving ops are the prefix" true
    (s.Wal.ops = List.filteri (fun i _ -> i < 4) sample_ops)

let test_short_write_mid_log_ends_trusted_prefix () =
  (* A short write MID-log leaves garbage in the middle of the file:
     every later (perfectly intact) record is appended after it and is
     unreachable — the scan's trusted prefix ends before the damage. *)
  let store = Io.mem_dir () in
  let rng = Prng.create ~seed:3 in
  let fdir =
    Fault.wrap ~rng { Fault.no_crash with Fault.short_at_append = Some 3 } store
  in
  let w = Wal.writer ~dim:1 ~dir:fdir () in
  List.iter (Wal.append w) sample_ops;
  Wal.close w;
  let s = Wal.scan ~dim:1 ~dir:store () in
  Alcotest.(check int) "trusted prefix ends before the short record" 2 s.Wal.records;
  Alcotest.(check bool) "everything after the damage is discarded" true
    (s.Wal.bytes_discarded > 0);
  Alcotest.(check bool) "ops are the intact prefix" true
    (s.Wal.ops = List.filteri (fun i _ -> i < 2) sample_ops)

let test_short_write_then_crash_equivalence () =
  (* The combined-fault shape the serving soak leans on: a record is
     silently short-written, and the machine crashes shortly after.
     Recovery lands on the trusted prefix and the continuation (re-fed
     from [ops_total + 1], as any producer holding its unacknowledged
     tail would) reproduces the reference maturity log bit for bit.
     Checkpoints are disabled here: a checkpoint covering a short-written
     record bridges the hole and desynchronizes WAL record indices from
     op ordinals — callers that checkpoint must read-back-verify the WAL
     first, which is precisely what [Rts_serve.Server] does. *)
  List.iter
    (fun (fault_seed, crash_at) ->
      let ops = trace 23 60 in
      let reference = Replay.replay_ops (Baseline_engine.make ~dim:1) ops in
      let store = Io.mem_dir () in
      let rng = Prng.create ~seed:fault_seed in
      let fdir =
        Fault.wrap ~rng
          {
            Fault.no_crash with
            Fault.crash_at_append = crash_at;
            torn = true;
            short_at_append = Some (crash_at - 1);
          }
          store
      in
      let cfg = { Durable.fsync_every = 3; checkpoint_every = 100_000; keep = 2 } in
      let durable, _h = Durable.wrap ~config:cfg ~dir:fdir (make_dt ~dim:1) in
      let _pre = feed durable ops ~base:0 in
      let engine2, report = Recovery.recover ~dim:1 ~make:make_dt ~dir:store () in
      let durable2, h2 = Durable.wrap ~config:cfg ~report ~dir:store engine2 in
      let suffix = drop report.Recovery.ops_total ops in
      let cont_log, _ = feed durable2 suffix ~base:report.Recovery.elements_total in
      Durable.close h2;
      if report.Recovery.maturities @ cont_log <> reference.Replay.maturities then
        Alcotest.failf "seed=%d crash_at=%d: log diverged after short write + crash"
          fault_seed crash_at)
    [ (101, 10); (102, 17); (103, 25); (104, 33); (105, 41) ]

let test_enospc_sticky_and_failover () =
  let ops = trace 31 40 in
  let reference = Replay.replay_ops (Baseline_engine.make ~dim:1) ops in
  let store = Io.mem_dir () in
  let rng = Prng.create ~seed:7 in
  let k = 25 in
  let fdir =
    Fault.wrap ~rng { Fault.no_crash with Fault.enospc_at_append = Some k } store
  in
  let cfg = { Durable.fsync_every = 2; checkpoint_every = 100_000; keep = 2 } in
  let durable, h = Durable.wrap ~config:cfg ~dir:fdir (make_baseline ~dim:1) in
  let completed = ref 0 in
  (try
     List.iter
       (fun op ->
         (match op with
         | Replay.Element el -> ignore (durable.Engine.process el)
         | Replay.Register qq -> durable.Engine.register qq
         | Replay.Terminate id -> durable.Engine.terminate id);
         incr completed)
       ops
   with Io.No_space -> ());
  Alcotest.(check int) "the k-th logged op hits the full disk" (k - 1) !completed;
  (match durable.Engine.process (e 1. 1) with
  | exception Io.No_space -> ()
  | _ -> Alcotest.fail "ENOSPC must be sticky: later appends must raise too");
  (* the machine is alive: sync and close still work, nothing already
     appended is harmed *)
  Durable.close h;
  let s = Wal.scan ~dim:1 ~dir:store () in
  Alcotest.(check int) "every pre-ENOSPC record is durable" (k - 1) s.Wal.records;
  (* fail over: recover from the full store, continue on a fresh one *)
  let engine2, report = Recovery.recover ~dim:1 ~make:make_baseline ~dir:store () in
  Alcotest.(check int) "recovery resumes at the shed op" (k - 1)
    report.Recovery.ops_total;
  let fresh = Io.mem_dir () in
  let durable2, h2 = Durable.wrap ~config:cfg ~dir:fresh engine2 in
  let suffix = drop report.Recovery.ops_total ops in
  let cont_log, _ = feed durable2 suffix ~base:report.Recovery.elements_total in
  Durable.close h2;
  Alcotest.(check (list (pair int int))) "maturity log identical across failover"
    reference.Replay.maturities
    (report.Recovery.maturities @ cont_log)

let prop_crash_equivalence =
  let case_gen =
    QCheck.Gen.(
      let* trace_seed = int_bound 1_000_000 in
      let* fault_seed = int_bound 1_000_000 in
      let* nops = int_range 10 120 in
      let* crash_frac = float_bound_inclusive 1.3 in
      let* torn = bool in
      let* bit_flip = bool in
      let* atomic = opt (int_range 1 6) in
      let* damage_checkpoint = bool in
      let* checkpoint_every = int_range 1 25 in
      let* fsync_every = int_range 1 8 in
      let+ engine = oneofl [ "baseline"; "dt" ] in
      (* crash point scaled to the trace length; > length means the run
         completes and only the unsynced tail is at risk *)
      let crash_at = max 1 (int_of_float (crash_frac *. float_of_int (2 * nops))) in
      {
        trace_seed;
        fault_seed;
        nops;
        crash_at;
        torn;
        bit_flip;
        crash_at_atomic = atomic;
        damage_checkpoint;
        checkpoint_every;
        fsync_every;
        engine;
      })
  in
  QCheck.Test.make ~count:(Qcheck_env.count 80) ~name:"crash equivalence (randomized)"
    (QCheck.make ~print:pp_case case_gen)
    (fun c ->
      ignore (run_crash_case c);
      true)

let () =
  Alcotest.run "resilience"
    [
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "hex round-trip" `Quick test_crc32_hex;
        ] );
      ( "wal",
        [
          Alcotest.test_case "write/scan round-trip" `Quick test_wal_roundtrip;
          Alcotest.test_case "torn tail dropped" `Quick test_wal_torn_tail;
          Alcotest.test_case "bit flip stops the scan" `Quick test_wal_bit_flip_stops_scan;
          Alcotest.test_case "garbage and empty logs" `Quick test_wal_scan_garbage_and_empty;
          Alcotest.test_case "writer amputates torn tail on open" `Quick
            test_wal_writer_truncates_torn_tail_on_open;
        ] );
      ( "segmented-wal",
        [
          Alcotest.test_case "rotation round-trip" `Quick test_wal_rotation_roundtrip;
          Alcotest.test_case "prune below the floor" `Quick test_wal_prune_below_floor;
          Alcotest.test_case "epoch fencing" `Quick test_wal_epoch_fencing;
          Alcotest.test_case "rotation crash-window overlap" `Quick
            test_wal_rotation_crash_overlap;
          Alcotest.test_case "fsync_dir errno classifier" `Quick
            test_fsync_dir_errno_classifier;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "write/load round-trip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "every single-bit flip detected" `Quick
            test_checkpoint_detects_every_bit_flip;
          Alcotest.test_case "every truncation detected" `Quick
            test_checkpoint_detects_every_truncation;
          Alcotest.test_case "semantic validation" `Quick test_checkpoint_semantic_validation;
          Alcotest.test_case "generations and prune" `Quick
            test_checkpoint_generations_and_prune;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "empty dir" `Quick test_recover_empty_dir;
          Alcotest.test_case "checkpoint + WAL suffix" `Quick
            test_recover_checkpoint_plus_wal_suffix;
          Alcotest.test_case "corrupt newest checkpoint fallback" `Quick
            test_recover_skips_corrupt_newest_checkpoint;
          Alcotest.test_case "checkpoint-only dir (WAL pruned away)" `Quick
            test_recover_checkpoint_only_dir;
          Alcotest.test_case "empty newest segment" `Quick
            test_recover_empty_newest_segment;
          Alcotest.test_case "dimension mismatch" `Quick test_recover_dim_mismatch;
          Alcotest.test_case "metrics" `Quick test_recovery_metrics;
        ] );
      ( "durable",
        [
          Alcotest.test_case "wrapper is transparent" `Quick test_durable_is_transparent;
          Alcotest.test_case "register_batch vs checkpoint boundary" `Quick
            test_durable_register_batch_checkpoint_boundary;
          Alcotest.test_case "bad config rejected" `Quick test_durable_bad_config;
        ] );
      ( "crash-equivalence",
        [
          Alcotest.test_case "exhaustive over every crash point" `Slow
            test_crash_equivalence_exhaustive;
          Alcotest.test_case "crash during checkpoint publication" `Quick
            test_crash_during_checkpoint_publication;
          QCheck_alcotest.to_alcotest prop_crash_equivalence;
        ] );
      ( "short-write-enospc",
        [
          Alcotest.test_case "short final record amputated" `Quick
            test_short_write_final_record_amputated;
          Alcotest.test_case "short mid-log ends the trusted prefix" `Quick
            test_short_write_mid_log_ends_trusted_prefix;
          Alcotest.test_case "short write + crash equivalence" `Quick
            test_short_write_then_crash_equivalence;
          Alcotest.test_case "ENOSPC sticky, survivable, failover" `Quick
            test_enospc_sticky_and_failover;
        ] );
    ]
