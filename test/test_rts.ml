(* Rts facade: subscription lifecycle, callbacks, closed-bound semantics,
   progress reporting, and agreement with a scalar model. *)

module Rts = Rts_core.Rts
module Prng = Rts_util.Prng

let test_basic_lifecycle () =
  let m = Rts.create ~dim:1 () in
  let fired = ref [] in
  let s =
    Rts.subscribe m ~label:"x"
      ~on_mature:(fun s -> fired := Rts.id s :: !fired)
      (Rts.interval ~lo:0. ~hi:10.)
      ~threshold:5
  in
  Alcotest.(check string) "status live" "Live"
    (match Rts.status s with `Live -> "Live" | `Matured -> "M" | `Cancelled -> "C");
  Alcotest.(check int) "live count" 1 (Rts.live_count m);
  Alcotest.(check int) "progress 0" 0 (Rts.progress m s);
  let r1 = Rts.feed m ~weight:3 [| 5. |] in
  Alcotest.(check int) "no maturity yet" 0 (List.length r1);
  Alcotest.(check int) "progress 3" 3 (Rts.progress m s);
  let r2 = Rts.feed m ~weight:2 [| 0. |] in
  Alcotest.(check int) "matured" 1 (List.length r2);
  Alcotest.(check (list int)) "callback ran" [ Rts.id s ] !fired;
  Alcotest.(check int) "live count 0" 0 (Rts.live_count m);
  Alcotest.(check int) "matured count" 1 (Rts.matured_count m);
  Alcotest.(check int) "progress of matured = threshold" 5 (Rts.progress m s)

let test_closed_bounds () =
  let m = Rts.create ~dim:1 () in
  let s = Rts.subscribe m (Rts.interval ~lo:0. ~hi:10.) ~threshold:1 in
  (* the upper bound itself must count: [0, 10] is closed *)
  let r = Rts.feed m [| 10. |] in
  Alcotest.(check int) "hi inclusive" 1 (List.length r);
  Alcotest.(check bool) "same subscription" true (Rts.id (List.hd r) = Rts.id s)

let test_default_weight_is_one () =
  let m = Rts.create ~dim:1 () in
  ignore (Rts.subscribe m (Rts.interval ~lo:0. ~hi:1.) ~threshold:3);
  Alcotest.(check int) "1st" 0 (List.length (Rts.feed m [| 0.5 |]));
  Alcotest.(check int) "2nd" 0 (List.length (Rts.feed m [| 0.5 |]));
  Alcotest.(check int) "3rd matures" 1 (List.length (Rts.feed m [| 0.5 |]))

let test_cancel () =
  let m = Rts.create ~dim:1 () in
  let s = Rts.subscribe m (Rts.interval ~lo:0. ~hi:10.) ~threshold:1 in
  Rts.cancel m s;
  Alcotest.(check int) "live count" 0 (Rts.live_count m);
  Alcotest.(check int) "no fire after cancel" 0 (List.length (Rts.feed m [| 5. |]));
  Alcotest.check_raises "double cancel" (Invalid_argument "Rts.cancel: subscription not live")
    (fun () -> Rts.cancel m s);
  Alcotest.check_raises "progress of cancelled"
    (Invalid_argument "Rts.progress: subscription cancelled") (fun () ->
      ignore (Rts.progress m s))

let test_multi_dim_box () =
  let m = Rts.create ~dim:2 () in
  let s =
    Rts.subscribe m (Rts.box [| (0., 10.); (neg_infinity, 5.) |]) ~threshold:2
  in
  ignore (Rts.feed m [| 5.; 4. |]);
  ignore (Rts.feed m [| 5.; 6. |]);
  (* second coord above 5: excluded *)
  Alcotest.(check int) "progress 1" 1 (Rts.progress m s);
  let r = Rts.feed m [| 10.; -1e9 |] in
  (* x = 10 inclusive; y unbounded below *)
  Alcotest.(check int) "matured" 1 (List.length r)

let test_describe () =
  let m = Rts.create ~dim:1 () in
  let s = Rts.subscribe m ~label:"hello" (Rts.interval ~lo:0. ~hi:1.) ~threshold:9 in
  let d = Rts.describe s in
  Alcotest.(check bool) "mentions label" true
    (String.length d >= 5 && String.sub d 0 5 = "hello");
  let anon = Rts.subscribe m (Rts.interval ~lo:0. ~hi:1.) ~threshold:9 in
  Alcotest.(check bool) "anon mentions id" true
    (String.length (Rts.describe anon) > 0 && (Rts.describe anon).[0] = '#')

let test_callbacks_order_and_once () =
  let m = Rts.create ~dim:1 () in
  let calls = ref [] in
  for i = 0 to 4 do
    ignore
      (Rts.subscribe m
         ~on_mature:(fun s -> calls := (i, Rts.id s) :: !calls)
         (Rts.interval ~lo:0. ~hi:1.)
         ~threshold:1)
  done;
  let fired = Rts.feed m [| 0.5 |] in
  Alcotest.(check int) "all five fire" 5 (List.length fired);
  Alcotest.(check int) "five callbacks exactly once" 5 (List.length !calls);
  (* feeding again fires nothing *)
  Alcotest.(check int) "no refire" 0 (List.length (Rts.feed m [| 0.5 |]))

let test_against_scalar_model () =
  let rng = Prng.create ~seed:3 in
  let m = Rts.create ~dim:1 () in
  let subs =
    List.init 40 (fun _ ->
        let a = float_of_int (Prng.int rng 20) in
        let b = a +. float_of_int (Prng.int rng 10) in
        let threshold = 1 + Prng.int rng 200 in
        let s = Rts.subscribe m (Rts.interval ~lo:a ~hi:b) ~threshold in
        (s, a, b, threshold, ref 0, ref false))
  in
  for _ = 1 to 1500 do
    let x = float_of_int (Prng.int rng 25) in
    let w = 1 + Prng.int rng 5 in
    let fired = Rts.feed m ~weight:w [| x |] in
    let fired_ids = List.map Rts.id fired in
    List.iter
      (fun (s, a, b, threshold, acc, dead) ->
        if (not !dead) && a <= x && x <= b then begin
          acc := !acc + w;
          if !acc >= threshold then begin
            Alcotest.(check bool) "model says fire" true (List.mem (Rts.id s) fired_ids);
            dead := true
          end
        end)
      subs
  done;
  List.iter
    (fun (s, _, _, threshold, acc, dead) ->
      if !dead then Alcotest.(check bool) "matured" true (Rts.status s = `Matured)
      else begin
        Alcotest.(check bool) "live" true (Rts.status s = `Live);
        Alcotest.(check int) "progress" (min !acc (threshold - 1)) (Rts.progress m s)
      end)
    subs

let test_snapshot_roundtrip () =
  let m = Rts.create ~dim:2 () in
  let a =
    Rts.subscribe m ~label:"with spaces and \"quotes\""
      (Rts.box [| (0., 10.); (neg_infinity, 5.) |])
      ~threshold:100
  in
  let b = Rts.subscribe m (Rts.box [| (3., 4.); (0., 1.) |]) ~threshold:7 in
  ignore (Rts.feed m ~weight:42 [| 5.; 0. |]);
  (* a: 42/100; b: not covered (y=0 in [0,1]? yes 0 in [0, succ 1) and x=5 not in [3, succ 4)) *)
  Alcotest.(check int) "a progress" 42 (Rts.progress m a);
  Alcotest.(check int) "b progress" 0 (Rts.progress m b);
  let snap = Rts.snapshot m in
  let fired = ref [] in
  let m' = Rts.restore ~on_mature:(fun s -> fired := Rts.id s :: !fired) snap in
  Alcotest.(check int) "live count restored" 2 (Rts.live_count m');
  let subs = List.sort compare (List.map Rts.id (Rts.subscriptions m')) in
  Alcotest.(check (list int)) "ids restored" [ Rts.id a; Rts.id b ] subs;
  let a' = List.find (fun s -> Rts.id s = Rts.id a) (Rts.subscriptions m') in
  Alcotest.(check (option string)) "label restored" (Rts.label a) (Rts.label a');
  Alcotest.(check int) "progress restored" 42 (Rts.progress m' a');
  (* 58 more weight matures a in both monitors at the same element *)
  ignore (Rts.feed m ~weight:57 [| 5.; 0. |]);
  ignore (Rts.feed m' ~weight:57 [| 5.; 0. |]);
  Alcotest.(check int) "57 not enough (99 < 100)" 0 (List.length !fired);
  let orig = Rts.feed m ~weight:1 [| 5.; 0. |] in
  let rest = Rts.feed m' ~weight:1 [| 5.; 0. |] in
  Alcotest.(check int) "original fires" 1 (List.length orig);
  Alcotest.(check int) "restored fires" 1 (List.length rest);
  Alcotest.(check (list int)) "callback on restore fired" [ Rts.id a ] !fired

let test_snapshot_divergence_free () =
  (* Long random run: snapshot mid-way, continue both, maturities match. *)
  let rng = Prng.create ~seed:19 in
  let m = Rts.create ~dim:1 () in
  for _ = 0 to 99 do
    let lo = float_of_int (Prng.int rng 20) in
    ignore
      (Rts.subscribe m
         (Rts.interval ~lo ~hi:(lo +. 1. +. float_of_int (Prng.int rng 10)))
         ~threshold:(50 + Prng.int rng 200))
  done;
  for _ = 1 to 300 do
    ignore (Rts.feed m ~weight:(1 + Prng.int rng 5) [| float_of_int (Prng.int rng 30) |])
  done;
  let m' = Rts.restore (Rts.snapshot m) in
  Alcotest.(check int) "same live count" (Rts.live_count m) (Rts.live_count m');
  for step = 1 to 2000 do
    let x = [| float_of_int (Prng.int rng 30) |] in
    let w = 1 + Prng.int rng 5 in
    let o = List.sort compare (List.map Rts.id (Rts.feed m ~weight:w x)) in
    let r = List.sort compare (List.map Rts.id (Rts.feed m' ~weight:w x)) in
    Alcotest.(check (list int)) (Printf.sprintf "step %d" step) o r
  done

let test_snapshot_empty () =
  let m = Rts.create ~dim:3 () in
  let m' = Rts.restore (Rts.snapshot m) in
  Alcotest.(check int) "dim restored" 3 (Rts.dim m');
  Alcotest.(check int) "empty" 0 (Rts.live_count m')

let test_restore_rejects_garbage () =
  Alcotest.check_raises "bad header" (Invalid_argument "Rts.restore: bad snapshot header")
    (fun () -> ignore (Rts.restore "not a snapshot"))

let test_restore_rejects_corrupt () =
  (* Damage a VALID snapshot in targeted ways; restore must refuse each. *)
  let m = Rts.create ~dim:2 () in
  ignore (Rts.subscribe m ~label:"a" (Rts.box [| (0., 1.); (2., 3.) |]) ~threshold:5);
  let snap = Rts.snapshot m in
  let lines = String.split_on_char '\n' snap in
  let header = List.hd lines and body = List.tl lines in
  let reject label s =
    match Rts.restore s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (label ^ ": corrupt snapshot accepted")
  in
  reject "zero dim" (String.concat "\n" ("rts-snapshot 1 dim 0" :: body));
  reject "dim mismatch drops bounds"
    (String.concat "\n" ("rts-snapshot 1 dim 3" :: body));
  reject "label field torn off"
    (String.concat "\n"
       (header
       :: List.map
            (fun l ->
              match String.index_opt l '"' with
              | Some i -> String.sub l 0 i
              | None -> l)
            body));
  reject "garbage line injected" (String.concat "\n" (header :: "1 2" :: body))

let prop_snapshot_roundtrip =
  (* Randomized version of the divergence-free test: random
     subscribe/cancel/feed churn, snapshot at a random cut, continue the
     original and the restored monitor in lockstep — matured id sets must
     agree at every step. *)
  QCheck.Test.make ~count:40 ~name:"snapshot/restore continues bit-identically"
    QCheck.(pair small_int (int_range 20 250))
    (fun (seed, steps) ->
      let rng = Prng.create ~seed in
      let m = Rts.create ~dim:1 () in
      let live = ref [] in
      let step_churn () =
        if Prng.bernoulli rng 0.25 || !live = [] then begin
          let lo = float_of_int (Prng.int rng 20) in
          let s =
            Rts.subscribe m
              (Rts.interval ~lo ~hi:(lo +. 1. +. float_of_int (Prng.int rng 10)))
              ~threshold:(1 + Prng.int rng 60)
          in
          live := s :: !live
        end;
        if !live <> [] && Prng.bernoulli rng 0.05 then begin
          let s = List.nth !live (Prng.int rng (List.length !live)) in
          Rts.cancel m s;
          live := List.filter (fun x -> Rts.id x <> Rts.id s) !live
        end;
        let matured =
          Rts.feed m ~weight:(1 + Prng.int rng 5) [| float_of_int (Prng.int rng 30) |]
        in
        let ids = List.map Rts.id matured in
        live := List.filter (fun x -> not (List.mem (Rts.id x) ids)) !live
      in
      let cut = Prng.int rng steps in
      for _ = 1 to cut do step_churn () done;
      let m' = Rts.restore (Rts.snapshot m) in
      let ok = ref (Rts.live_count m = Rts.live_count m') in
      for _ = cut + 1 to steps do
        let x = [| float_of_int (Prng.int rng 30) |] in
        let w = 1 + Prng.int rng 5 in
        let o = List.sort compare (List.map Rts.id (Rts.feed m ~weight:w x)) in
        let r = List.sort compare (List.map Rts.id (Rts.feed m' ~weight:w x)) in
        if o <> r then ok := false
      done;
      !ok)

let test_register_batch_equivalence () =
  (* Engine.register_batch must behave exactly like sequential register. *)
  let open Rts_core in
  let rng = Prng.create ~seed:17 in
  let queries =
    List.init 300 (fun id ->
        let a = float_of_int (Prng.int rng 30) in
        let b = a +. 1. +. float_of_int (Prng.int rng 15) in
        { Types.id; rect = Types.interval a b; threshold = 1 + Prng.int rng 60 })
  in
  let batched = Dt_engine.make ~dim:1 in
  batched.Engine.register_batch queries;
  let sequential = Dt_engine.make ~dim:1 in
  List.iter sequential.Engine.register queries;
  let oracle = Baseline_engine.make ~dim:1 in
  oracle.Engine.register_batch queries;
  for step = 1 to 2500 do
    let e =
      { Types.value = [| float_of_int (Prng.int rng 50) |]; weight = 1 + Prng.int rng 4 }
    in
    let a = batched.Engine.process e in
    let b = sequential.Engine.process e in
    let c = oracle.Engine.process e in
    Alcotest.(check (list int)) (Printf.sprintf "step %d batched" step) c a;
    Alcotest.(check (list int)) (Printf.sprintf "step %d sequential" step) c b
  done

let test_register_batch_on_nonempty_engine () =
  let open Rts_core in
  let e1 = Dt_engine.create ~dim:1 () in
  Dt_engine.register e1 { Types.id = 100; rect = Types.interval 0. 10.; threshold = 5 };
  ignore (Dt_engine.process e1 { Types.value = [| 5. |]; weight = 3 });
  (* batch onto a non-empty engine must keep prior progress *)
  Dt_engine.register_batch e1
    (List.init 50 (fun id -> { Types.id; rect = Types.interval 0. 10.; threshold = 100 }));
  Alcotest.(check int) "prior progress preserved" 3 (Dt_engine.progress e1 100);
  Alcotest.(check int) "all alive" 51 (Dt_engine.alive_count e1);
  let matured = Dt_engine.process e1 { Types.value = [| 5. |]; weight = 2 } in
  Alcotest.(check (list int)) "old query matures on schedule" [ 100 ] matured

let test_register_batch_duplicate_rejected () =
  let open Rts_core in
  let e = Dt_engine.create ~dim:1 () in
  Dt_engine.register e { Types.id = 1; rect = Types.interval 0. 1.; threshold = 1 };
  Alcotest.check_raises "dup in batch"
    (Invalid_argument "Dt_engine.register_batch: id already alive") (fun () ->
      Dt_engine.register_batch e [ { Types.id = 1; rect = Types.interval 0. 1.; threshold = 1 } ])

let () =
  Alcotest.run "rts_facade"
    [
      ( "facade",
        [
          Alcotest.test_case "basic lifecycle" `Quick test_basic_lifecycle;
          Alcotest.test_case "closed bounds" `Quick test_closed_bounds;
          Alcotest.test_case "default weight" `Quick test_default_weight_is_one;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "multi-dim box" `Quick test_multi_dim_box;
          Alcotest.test_case "describe" `Quick test_describe;
          Alcotest.test_case "callbacks once" `Quick test_callbacks_order_and_once;
          Alcotest.test_case "scalar model agreement" `Quick test_against_scalar_model;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "divergence-free continuation" `Quick test_snapshot_divergence_free;
          Alcotest.test_case "empty snapshot" `Quick test_snapshot_empty;
          Alcotest.test_case "rejects garbage" `Quick test_restore_rejects_garbage;
          Alcotest.test_case "rejects corrupt snapshots" `Quick test_restore_rejects_corrupt;
          QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
        ] );
      ( "register_batch",
        [
          Alcotest.test_case "batch = sequential = oracle" `Quick test_register_batch_equivalence;
          Alcotest.test_case "batch on non-empty engine" `Quick
            test_register_batch_on_nonempty_engine;
          Alcotest.test_case "duplicate rejected" `Quick test_register_batch_duplicate_rejected;
        ] );
    ]
