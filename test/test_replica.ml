(* Replicated serving: rep-protocol codec round-trips, and the
   replica-topology soak — primary kill and wedge-zombie scenarios on
   top of per-node storage faults and a lossy network, verified
   bit-identically against the archived-chain oracle (never-early,
   exactly-once maturities across fenced failover; WAL disk bounded by
   segment pruning). Pinned CI seeds via RTS_REPLICA_SEEDS. *)

open Rts_core
open Rts_workload
module Rep = Rts_replica.Rep
module Cluster = Rts_replica.Cluster
module Rsoak = Rts_replica.Rsoak
module Frame = Rts_serve.Frame
module Server = Rts_serve.Server

let make ~dim = Dt_engine.make ~dim

(* ------------------------------------------------------------------ *)
(* Rep codec                                                           *)
(* ------------------------------------------------------------------ *)

let rep = Alcotest.testable Rep.pp ( = )

let roundtrip ~dim f =
  match Rep.of_string ~dim (Rep.to_string f) with
  | Ok g -> Alcotest.check rep (Rep.to_string f) f g
  | Error e -> Alcotest.failf "rep %S did not parse: %s" (Rep.to_string f) e

let test_rep_roundtrip () =
  let gen = Generator.create ~dim:2 ~seed:11 () in
  List.iter (roundtrip ~dim:2)
    [
      Rep.Append
        {
          epoch = 3;
          tenant = "t0";
          index = 41;
          op = Replay.Register (Generator.query gen ~id:7 ~threshold:120);
        };
      Rep.Append { epoch = 1; tenant = "a_B-9."; index = 1; op = Replay.Terminate 5 };
      Rep.Append { epoch = 2; tenant = "t1"; index = 9; op = Replay.Element (Generator.element gen) };
      Rep.Ack { epoch = 2; tenant = "t0"; durable = 40 };
      Rep.Heartbeat { epoch = 1; floors = [] };
      Rep.Heartbeat { epoch = 4; floors = [ ("a", 12); ("b", 0) ] };
      Rep.Probe { epoch = 9 };
      Rep.Position { epoch = 9; total = 812 };
      Rep.View { epoch = 9; primary = 2; members = [ 2 ] };
      Rep.View { epoch = 3; primary = 0; members = [ 0; 1; 2 ] };
    ]

let test_rep_malformed () =
  List.iter
    (fun line ->
      match Rep.of_string ~dim:2 line with
      | Ok f -> Alcotest.failf "%S parsed as %s" line (Rep.to_string f)
      | Error _ -> ())
    [
      "rapp";
      "rapp,1";
      "rapp,1,t0";
      "rapp,1,t0,notanint,e,1,2";
      "rapp,1,bad tenant!,3,t,5";
      "rack,1,t0";
      "rack,x,t0,4";
      "rhb,1,t0-12";
      "rhb,1,t0:x";
      "rprobe,1,extra";
      "rpos,1";
      "rview,2";
      "rview,2,1";
      "rview,2,1,2;3";
      "rview,2,1,x";
      "nonsense,1,2";
    ]

let test_rep_dispatch () =
  (* rep verbs and serve verbs must stay disjoint so one link carries
     both *)
  List.iter
    (fun l -> Alcotest.(check bool) l true (Rep.is_rep l))
    [ "rapp,1,t,1,x"; "rack,1,t,2"; "rhb,1"; "rprobe,1"; "rpos,1,2"; "rview,1,0" ];
  List.iter
    (fun l -> Alcotest.(check bool) l false (Rep.is_rep l))
    [ "op,t0,e,1,2"; "batch,t0,1,e"; "sub,t0"; "sub,t0,44"; "stats"; "bye"; "" ]

(* ------------------------------------------------------------------ *)
(* Replica-topology soaks                                              *)
(* ------------------------------------------------------------------ *)

let small seed scenario =
  {
    Rsoak.default with
    Rsoak.tenants = 2;
    queries = 14;
    elements = 420;
    batch = 6;
    threshold = 700;
    seed;
    faulty_incarnations = 2;
    crash_every = 90;
    scenario;
    cluster =
      {
        Rsoak.default.Rsoak.cluster with
        Cluster.server =
          {
            Rsoak.default.Rsoak.cluster.Cluster.server with
            Server.segment_records = 32;
            durable =
              {
                Rts_resilience.Durable.default with
                fsync_every = 5;
                (* 10× this must clear even a kill run's volume: a
                   fail-stop loses the accepted-but-unapplied queue tail
                   (at-least-once admission), so leave real headroom
                   against the ~450 scripted ops per tenant *)
                checkpoint_every = 29;
              };
          };
      };
  }

let check_report name report =
  if not report.Rsoak.ok then Alcotest.failf "%s failed:@\n%a" name Rsoak.pp report;
  (* volume is fault-luck-dependent in general, but these seeds are
     pinned: demand the 10× checkpoint-interval soak actually happened *)
  if not report.Rsoak.volume_ok then
    Alcotest.failf "%s fell short of 10x checkpoint-interval volume:@\n%a" name Rsoak.pp report

let test_clean () =
  let report = Rsoak.run ~make (small 5 Rsoak.Clean) in
  check_report "clean" report;
  Alcotest.(check int) "no failover" 0 report.Rsoak.failovers;
  Alcotest.(check int) "primary stays 0" 0 report.Rsoak.promoted;
  Alcotest.(check bool) "pruning ran" true report.Rsoak.pruned_somewhere

let test_kill_failover () =
  let report = Rsoak.run ~make (small 7 (Rsoak.Kill 110)) in
  check_report "kill" report;
  Alcotest.(check bool) "failed over" true (report.Rsoak.failovers >= 1);
  Alcotest.(check bool) "promoted a replica" true (report.Rsoak.promoted <> 0)

let test_wedge_zombie () =
  let report = Rsoak.run ~make (small 9 (Rsoak.Wedge { at = 100; duration = 260 })) in
  check_report "wedge" report;
  Alcotest.(check bool) "failed over" true (report.Rsoak.failovers >= 1);
  Alcotest.(check bool) "zombie frames fenced" true (report.Rsoak.fenced > 0)

(* arbitrary seeds, the full scenario matrix *)
let prop_rsoak =
  QCheck.Test.make
    ~count:(Qcheck_env.count 4)
    ~name:"replica soak: archived chain == log == sub across failover"
    QCheck.(pair (int_range 1 10_000) (int_range 0 2))
    (fun (seed, pick) ->
      let scenario =
        match pick with
        | 0 -> Rsoak.Clean
        | 1 -> Rsoak.Kill (80 + (seed mod 90))
        | _ -> Rsoak.Wedge { at = 80 + (seed mod 70); duration = 200 + (seed mod 100) }
      in
      let report = Rsoak.run ~make (small seed scenario) in
      if not report.Rsoak.ok then
        QCheck.Test.fail_reportf "seed %d:@\n%a" seed Rsoak.pp report;
      true)

(* the seeds check-replica pins in CI — default config: 3 serving
   nodes, kill AND wedge legs, full 10× checkpoint-interval volume *)
let test_pinned_seeds () =
  let seeds =
    match Sys.getenv_opt "RTS_REPLICA_SEEDS" with
    | None | Some "" -> [ 2; 11 ]
    | Some s -> String.split_on_char ',' s |> List.filter_map int_of_string_opt
  in
  List.iter
    (fun seed ->
      let kill =
        Rsoak.run ~make { Rsoak.default with Rsoak.seed; scenario = Rsoak.Kill 120 }
      in
      check_report (Printf.sprintf "pinned seed %d (kill)" seed) kill;
      let wedge =
        Rsoak.run ~make
          { Rsoak.default with Rsoak.seed; scenario = Rsoak.Wedge { at = 120; duration = 300 } }
      in
      check_report (Printf.sprintf "pinned seed %d (wedge)" seed) wedge;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d wedge fenced zombie frames" seed)
        true (wedge.Rsoak.fenced > 0))
    seeds

let () =
  Alcotest.run "replica"
    [
      ( "rep codec",
        [
          Alcotest.test_case "round-trips" `Quick test_rep_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_rep_malformed;
          Alcotest.test_case "verb dispatch" `Quick test_rep_dispatch;
        ] );
      ( "soak",
        [
          Alcotest.test_case "clean replication" `Quick test_clean;
          Alcotest.test_case "kill failover" `Quick test_kill_failover;
          Alcotest.test_case "wedge zombie fenced" `Quick test_wedge_zombie;
          QCheck_alcotest.to_alcotest prop_rsoak;
          Alcotest.test_case "pinned CI seeds" `Slow test_pinned_seeds;
        ] );
    ]
