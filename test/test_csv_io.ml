(* Csv_io: round-trips, error reporting, comment/blank handling, infinite
   bounds — the CLI's interchange format. *)

open Rts_core
open Rts_workload

let q ~id ~threshold bounds = { Types.id; rect = Types.rect_make bounds; threshold }

let test_query_roundtrip () =
  let original = q ~id:7 ~threshold:1000 [| (1.5, 2.5); (neg_infinity, 10.) |] in
  let line = Csv_io.query_to_line original in
  let parsed = Csv_io.parse_query ~dim:2 ~closed:false ~line_no:1 line in
  Alcotest.(check int) "id" original.id parsed.Types.id;
  Alcotest.(check int) "threshold" original.threshold parsed.Types.threshold;
  Alcotest.(check bool) "rect equal" true (original.rect = parsed.Types.rect)

let test_element_roundtrip () =
  let e = { Types.value = [| 3.25; -7. |]; weight = 42 } in
  let parsed = Csv_io.parse_element ~dim:2 ~line_no:1 (Csv_io.element_to_line e) in
  Alcotest.(check bool) "equal" true (e = parsed)

let test_element_default_weight () =
  let e = Csv_io.parse_element ~dim:2 ~line_no:1 "1.0,2.0" in
  Alcotest.(check int) "weight defaults to 1" 1 e.Types.weight;
  let e2 = Csv_io.parse_element ~dim:2 ~line_no:1 "1.0,2.0,9" in
  Alcotest.(check int) "explicit weight" 9 e2.Types.weight

let test_infinite_bounds () =
  let parsed = Csv_io.parse_query ~dim:1 ~closed:false ~line_no:1 "0,5,-inf,inf" in
  Alcotest.(check (float 0.)) "lo" neg_infinity parsed.Types.rect.lo.(0);
  Alcotest.(check (float 0.)) "hi" infinity parsed.Types.rect.hi.(0);
  (* and back *)
  Alcotest.(check string) "roundtrip" "0,5,-inf,inf" (Csv_io.query_to_line parsed)

let test_closed_flag () =
  let open_q = Csv_io.parse_query ~dim:1 ~closed:false ~line_no:1 "0,1,0,10" in
  let closed_q = Csv_io.parse_query ~dim:1 ~closed:true ~line_no:1 "0,1,0,10" in
  Alcotest.(check bool) "open excludes hi" false (Types.rect_contains open_q.Types.rect [| 10. |]);
  Alcotest.(check bool) "closed includes hi" true
    (Types.rect_contains closed_q.Types.rect [| 10. |])

let test_skippable () =
  Alcotest.(check bool) "blank" true (Csv_io.is_skippable "");
  Alcotest.(check bool) "spaces" true (Csv_io.is_skippable "   ");
  Alcotest.(check bool) "comment" true (Csv_io.is_skippable "# hello");
  Alcotest.(check bool) "indented comment" true (Csv_io.is_skippable "  # hello");
  Alcotest.(check bool) "data" false (Csv_io.is_skippable "1,2,3")

let expect_parse_error f =
  match f () with
  | exception Csv_io.Parse_error msg ->
      Alcotest.(check bool) ("mentions line: " ^ msg) true
        (String.length msg > 5 && String.sub msg 0 5 = "line ")
  | _ -> Alcotest.fail "expected Parse_error"

let test_errors () =
  expect_parse_error (fun () -> Csv_io.parse_query ~dim:1 ~closed:false ~line_no:3 "x,1,0,1");
  expect_parse_error (fun () -> Csv_io.parse_query ~dim:1 ~closed:false ~line_no:3 "1,y,0,1");
  expect_parse_error (fun () -> Csv_io.parse_query ~dim:2 ~closed:false ~line_no:3 "1,1,0,1");
  expect_parse_error (fun () -> Csv_io.parse_query ~dim:1 ~closed:false ~line_no:3 "1,1,5,5");
  expect_parse_error (fun () -> Csv_io.parse_element ~dim:2 ~line_no:3 "1.0");
  expect_parse_error (fun () -> Csv_io.parse_element ~dim:1 ~line_no:3 "1.0,0");
  expect_parse_error (fun () -> Csv_io.parse_element ~dim:1 ~line_no:3 "oops")

(* A NaN bound or a non-finite element coordinate must be rejected with a
   Parse_error naming the offending line, not silently admitted (a NaN
   bound slips past validate_query's [<] checks and poisons every engine's
   tree ordering downstream). *)
let contains_substring ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let expect_parse_error_naming_line ~line_no f =
  match f () with
  | exception Csv_io.Parse_error msg ->
      let tag = Printf.sprintf "line %d" line_no in
      Alcotest.(check bool)
        (Printf.sprintf "%S names %S" msg tag)
        true
        (contains_substring ~needle:tag msg)
  | _ -> Alcotest.fail "expected Parse_error"

let test_nan_and_nonfinite_rejected () =
  (* NaN bounds, any spelling float_of_string accepts *)
  List.iter
    (fun bad ->
      expect_parse_error_naming_line ~line_no:7 (fun () ->
          Csv_io.parse_query ~dim:1 ~closed:false ~line_no:7
            (Printf.sprintf "1,10,%s,1" bad));
      expect_parse_error_naming_line ~line_no:7 (fun () ->
          Csv_io.parse_query ~dim:1 ~closed:false ~line_no:7 (Printf.sprintf "1,10,0,%s" bad)))
    [ "nan"; "-nan"; "NaN" ];
  (* ...but infinite bounds stay legal (open-ended rectangles) *)
  ignore (Csv_io.parse_query ~dim:1 ~closed:false ~line_no:1 "1,10,-inf,inf");
  (* element coordinates must be finite: no NaN, no +-inf *)
  List.iter
    (fun bad ->
      expect_parse_error_naming_line ~line_no:9 (fun () ->
          Csv_io.parse_element ~dim:1 ~line_no:9 bad);
      expect_parse_error_naming_line ~line_no:9 (fun () ->
          Csv_io.parse_element ~dim:2 ~line_no:9 (Printf.sprintf "1.0,%s" bad));
      expect_parse_error_naming_line ~line_no:9 (fun () ->
          Csv_io.parse_element ~dim:1 ~line_no:9 (Printf.sprintf "%s,3" bad)))
    [ "nan"; "inf"; "+inf"; "-inf"; "infinity" ]

(* Full-precision floats that "%g" (6 significant digits) mangles: these
   are the regression witnesses for the lossy round-trip that broke
   Replay's bit-identical record/replay guarantee. *)
let test_full_precision_roundtrip () =
  List.iter
    (fun x ->
      let e = { Types.value = [| x |]; weight = 1 } in
      let parsed = Csv_io.parse_element ~dim:1 ~line_no:1 (Csv_io.element_to_line e) in
      Alcotest.(check bool)
        (Printf.sprintf "%h survives print->parse bit-exactly" x)
        true
        (Int64.bits_of_float parsed.Types.value.(0) = Int64.bits_of_float x))
    [
      0.1 +. 0.2 (* 0.30000000000000004 *);
      1. /. 3.;
      86413.60392054954 (* a Generator-style coordinate on [0, 1e5] *);
      Float.min_float;
      Float.max_float;
      4.9e-324 (* smallest subnormal *);
      -0.;
      1.2345678901234567e-8;
    ]

(* ------------------------------------------------------------------ *)
(* QCheck: print->parse is the identity, bit-exactly, for arbitrary
   queries (including open-ended +-inf bounds) and elements. This is the
   property Replay's record/replay guarantee rests on; it fails on the
   old "%g" printer. *)

let finite_float_gen st =
  (* Uniform over bit patterns => exercises subnormals, huge magnitudes
     and every mantissa shape, not just round decimals. *)
  let rec go () =
    let x = Int64.float_of_bits (QCheck.Gen.ui64 st) in
    if Float.is_finite x then x else go ()
  in
  go ()

let elem_arb dim =
  QCheck.make
    ~print:(fun e -> Csv_io.element_to_line e)
    QCheck.Gen.(
      map2
        (fun value weight -> { Types.value; weight })
        (array_repeat dim finite_float_gen) (int_range 1 1_000_000))

let bound_pair_gen st =
  let lo = if QCheck.Gen.bool st then neg_infinity else finite_float_gen st in
  let hi = if QCheck.Gen.bool st then infinity else finite_float_gen st in
  if lo < hi then (lo, hi) else if hi < lo then (hi, lo) else (lo, Float.succ lo)

let query_arb dim =
  QCheck.make ~print:Csv_io.query_to_line
    QCheck.Gen.(
      map3
        (fun id threshold pairs -> { Types.id; threshold; rect = Types.rect_make pairs })
        (int_range 0 1_000_000) (int_range 1 1_000_000_000)
        (array_repeat dim bound_pair_gen))

let float_bits_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

let prop_element_roundtrip dim =
  QCheck.Test.make ~count:2000
    ~name:(Printf.sprintf "element %dD print->parse bit-exact" dim)
    (elem_arb dim)
    (fun e ->
      let parsed = Csv_io.parse_element ~dim ~line_no:1 (Csv_io.element_to_line e) in
      parsed.Types.weight = e.Types.weight
      && Array.for_all2 float_bits_equal parsed.Types.value e.Types.value)

let prop_query_roundtrip dim =
  QCheck.Test.make ~count:2000
    ~name:(Printf.sprintf "query %dD print->parse bit-exact (incl. +-inf bounds)" dim)
    (query_arb dim)
    (fun q ->
      let parsed = Csv_io.parse_query ~dim ~closed:false ~line_no:1 (Csv_io.query_to_line q) in
      parsed.Types.id = q.Types.id
      && parsed.Types.threshold = q.Types.threshold
      && Array.for_all2 float_bits_equal parsed.Types.rect.lo q.Types.rect.lo
      && Array.for_all2 float_bits_equal parsed.Types.rect.hi q.Types.rect.hi)

let with_string_channel s f =
  let file = Filename.temp_file "rts_csv" ".csv" in
  let oc = open_out file in
  output_string oc s;
  close_out oc;
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () ->
      close_in ic;
      Sys.remove file)
    (fun () -> f ic)

let test_read_queries () =
  let sheet = "# alert sheet\n1,100,0,10\n\n2,200,5,15\n# trailing comment\n" in
  let queries = with_string_channel sheet (fun ic -> Csv_io.read_queries ~dim:1 ~closed:false ic) in
  Alcotest.(check (list int)) "ids in order" [ 1; 2 ]
    (List.map (fun (q : Types.query) -> q.id) queries)

let test_fold_elements () =
  let stream = "1.0,3\n# skip\n2.0\n3.0,2\n" in
  let total =
    with_string_channel stream (fun ic ->
        Csv_io.fold_elements ~dim:1 (fun ~elt ~line_no:_ acc -> acc + elt.Types.weight) 0 ic)
  in
  Alcotest.(check int) "weights summed" 6 total

let test_crlf_files () =
  (* Traces exported from Windows tooling arrive CRLF-terminated; every
     reader must treat the trailing '\r' (and stray indentation) as
     whitespace, not data. *)
  let sheet = "# alert sheet\r\n1,100,0,10\r\n\r\n  2,200,5,15  \r\n# comment\r\n" in
  let queries =
    with_string_channel sheet (fun ic -> Csv_io.read_queries ~dim:1 ~closed:false ic)
  in
  Alcotest.(check (list int)) "CRLF query sheet parses" [ 1; 2 ]
    (List.map (fun (q : Types.query) -> q.id) queries);
  Alcotest.(check (list int)) "bounds unaffected by CR" [ 10; 15 ]
    (List.map (fun (q : Types.query) -> int_of_float q.rect.Types.hi.(0)) queries);
  let stream = "1.0,3\r\n# skip\r\n2.0\r\n3.0,2\r\n" in
  let total =
    with_string_channel stream (fun ic ->
        Csv_io.fold_elements ~dim:1 (fun ~elt ~line_no:_ acc -> acc + elt.Types.weight) 0 ic)
  in
  Alcotest.(check int) "CRLF element stream parses" 6 total

let test_crlf_lines () =
  let q = Csv_io.parse_query ~dim:1 ~closed:false ~line_no:1 "7,50,0,10\r" in
  Alcotest.(check int) "query line with trailing CR" 7 q.Types.id;
  let e = Csv_io.parse_element ~dim:2 ~line_no:1 "  1.5,2.5,4\r" in
  Alcotest.(check int) "element line with CR + indent" 4 e.Types.weight;
  Alcotest.(check bool) "CR-only line is skippable" true (Csv_io.is_skippable "\r");
  Alcotest.(check bool) "comment with CR is skippable" true (Csv_io.is_skippable "# x\r")

let test_generator_roundtrip_stream () =
  (* Stream generated by Generator must parse back identically. *)
  let gen = Generator.create ~dim:2 ~seed:5 () in
  for _ = 1 to 500 do
    let e = Generator.element gen in
    let parsed = Csv_io.parse_element ~dim:2 ~line_no:1 (Csv_io.element_to_line e) in
    Alcotest.(check int) "weight" e.Types.weight parsed.Types.weight;
    (* shortest round-trip printing: coordinates survive bit-exactly *)
    Array.iteri
      (fun k x ->
        Alcotest.(check bool) "coordinate bit-exact" true
          (Int64.bits_of_float x = Int64.bits_of_float parsed.Types.value.(k)))
      e.Types.value
  done

let () =
  Alcotest.run "csv_io"
    [
      ( "unit",
        [
          Alcotest.test_case "query roundtrip" `Quick test_query_roundtrip;
          Alcotest.test_case "element roundtrip" `Quick test_element_roundtrip;
          Alcotest.test_case "default weight" `Quick test_element_default_weight;
          Alcotest.test_case "infinite bounds" `Quick test_infinite_bounds;
          Alcotest.test_case "closed flag" `Quick test_closed_flag;
          Alcotest.test_case "skippable lines" `Quick test_skippable;
          Alcotest.test_case "parse errors name the line" `Quick test_errors;
          Alcotest.test_case "NaN / non-finite rejected" `Quick test_nan_and_nonfinite_rejected;
          Alcotest.test_case "full-precision roundtrip" `Quick test_full_precision_roundtrip;
          Alcotest.test_case "read_queries" `Quick test_read_queries;
          Alcotest.test_case "fold_elements" `Quick test_fold_elements;
          Alcotest.test_case "CRLF files parse" `Quick test_crlf_files;
          Alcotest.test_case "CRLF lines parse" `Quick test_crlf_lines;
          Alcotest.test_case "generator stream roundtrip" `Quick test_generator_roundtrip_stream;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest (prop_element_roundtrip 1);
          QCheck_alcotest.to_alcotest (prop_element_roundtrip 2);
          QCheck_alcotest.to_alcotest (prop_query_roundtrip 1);
          QCheck_alcotest.to_alcotest (prop_query_roundtrip 2);
        ] );
    ]
