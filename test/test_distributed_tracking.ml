(* Distributed_tracking: exactness of maturity detection (unweighted:
   maturity exactly at the tau-th increment; weighted: at the first
   crossing), the O(h log tau) message bound, and round-count behaviour —
   under adversarial increment schedules (round-robin, single hot site,
   huge weights, alternating). *)

module Dt = Rts_dt.Distributed_tracking
module Prng = Rts_util.Prng

(* Drive an instance with a schedule of (site, weight) increments; return
   the 1-based index of the increment at which it matured (or None). *)
let drive t schedule =
  let matured_at = ref None in
  List.iteri
    (fun i (site, by) ->
      if !matured_at = None then
        if Dt.increment t ~site ~by then matured_at := Some (i + 1))
    schedule;
  !matured_at

let test_unweighted_exact_maturity () =
  (* Unweighted: total = number of increments, so maturity must land
     exactly on the tau-th increment whatever the site pattern. *)
  List.iter
    (fun (h, tau, pattern_seed) ->
      let t = Dt.create ~h ~tau in
      let rng = Prng.create ~seed:pattern_seed in
      let schedule = List.init (tau + 10) (fun _ -> (Prng.int rng h, 1)) in
      match drive t schedule with
      | Some at ->
          Alcotest.(check int) (Printf.sprintf "h=%d tau=%d" h tau) tau at;
          Alcotest.(check bool) "flag set" true (Dt.is_mature t)
      | None -> Alcotest.fail "never matured")
    [ (1, 1, 1); (1, 100, 2); (3, 7, 3); (4, 1000, 4); (16, 257, 5); (7, 6, 6); (5, 30, 7) ]

let test_round_robin_exact () =
  let h = 8 and tau = 500 in
  let t = Dt.create ~h ~tau in
  let schedule = List.init (tau + 5) (fun i -> (i mod h, 1)) in
  Alcotest.(check (option int)) "exact at tau" (Some tau) (drive t schedule)

let test_single_hot_site () =
  (* All increments at one site: the slack inspection happens at a single
     participant; maturity must still be exact. *)
  let h = 8 and tau = 500 in
  let t = Dt.create ~h ~tau in
  let schedule = List.init (tau + 5) (fun _ -> (0, 1)) in
  Alcotest.(check (option int)) "exact at tau" (Some tau) (drive t schedule)

let test_weighted_first_crossing () =
  (* Weighted: maturity at the first increment where the running total
     reaches tau. Check against a scalar accumulator. *)
  List.iter
    (fun seed ->
      let rng = Prng.create ~seed in
      let h = 1 + Prng.int rng 10 in
      let tau = 1 + Prng.int rng 10_000 in
      let t = Dt.create ~h ~tau in
      let total = ref 0 in
      let expected = ref None in
      let schedule =
        List.init 5_000 (fun i ->
            let by = 1 + Prng.int rng 50 in
            if !expected = None then begin
              total := !total + by;
              if !total >= tau then expected := Some (i + 1)
            end;
            (Prng.int rng h, by))
      in
      Alcotest.(check (option int))
        (Printf.sprintf "seed=%d h=%d tau=%d" seed h tau)
        !expected (drive t schedule))
    [ 11; 12; 13; 14; 15; 16; 17; 18; 19; 20 ]

let test_huge_single_weight () =
  (* One increment vastly exceeding tau must mature immediately. *)
  let t = Dt.create ~h:8 ~tau:1_000_000 in
  Alcotest.(check bool) "immediate" true (Dt.increment t ~site:3 ~by:5_000_000);
  Alcotest.(check bool) "flag" true (Dt.is_mature t)

let test_weighted_work_is_not_tau () =
  (* Section 7's point: CPU work must scale with the number of increments,
     not with tau. With tau = 50M reached in ~1000 increments, the naive
     unit-increment reduction would do 5*10^7 steps; the real protocol must
     finish fast. We bound it indirectly via a wall-clock sanity check. *)
  let tau = 50_000_000 in
  let t = Dt.create ~h:16 ~tau in
  let t0 = Unix.gettimeofday () in
  let i = ref 0 in
  while not (Dt.is_mature t) do
    ignore (Dt.increment t ~site:(!i mod 16) ~by:50_000);
    incr i
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "finished in ~1000 increments" true (!i <= tau / 50_000 + 1);
  Alcotest.(check bool) "fast (not O(tau))" true (dt < 1.

  )

let test_message_bound () =
  List.iter
    (fun seed ->
      let rng = Prng.create ~seed in
      let h = 1 + Prng.int rng 32 in
      let tau = 1 + Prng.int rng 1_000_000 in
      let t = Dt.create ~h ~tau in
      let bound = Dt.message_bound ~h ~tau in
      while not (Dt.is_mature t) do
        ignore (Dt.increment t ~site:(Prng.int rng h) ~by:(1 + Prng.int rng 20))
      done;
      Alcotest.(check bool)
        (Printf.sprintf "messages %d <= bound %d (h=%d tau=%d)" (Dt.messages t) bound h tau)
        true
        (Dt.messages t <= bound))
    [ 31; 32; 33; 34; 35; 36; 37; 38 ]

let test_messages_beat_naive () =
  (* The whole point: for tau >> h, messages << tau (naive cost). *)
  let h = 8 and tau = 1_000_000 in
  let t = Dt.create ~h ~tau in
  let i = ref 0 in
  while not (Dt.is_mature t) do
    ignore (Dt.increment t ~site:(!i mod h) ~by:1);
    incr i
  done;
  Alcotest.(check bool)
    (Printf.sprintf "messages %d << tau %d" (Dt.messages t) tau)
    true
    (Dt.messages t * 100 < tau)

let test_rounds_logarithmic () =
  let h = 4 and tau = 1_000_000 in
  let t = Dt.create ~h ~tau in
  let i = ref 0 in
  while not (Dt.is_mature t) do
    ignore (Dt.increment t ~site:(!i mod h) ~by:1);
    incr i
  done;
  (* Each round shrinks tau by >= 1/3: rounds <= log_{3/2}(tau) ~ 35. *)
  Alcotest.(check bool)
    (Printf.sprintf "rounds %d logarithmic" (Dt.rounds t))
    true
    (Dt.rounds t <= 40)

let test_small_tau_direct () =
  (* tau <= 6h starts in direct mode: zero rounds, exact detection. *)
  let h = 10 and tau = 42 in
  let t = Dt.create ~h ~tau in
  let schedule = List.init 60 (fun i -> (i mod h, 1)) in
  Alcotest.(check (option int)) "exact" (Some tau) (drive t schedule);
  Alcotest.(check int) "no rounds" 0 (Dt.rounds t)

(* Raise [f], expect [Invalid_argument msg], return [msg]. *)
let capture_invalid name f =
  match f () with
  | exception Invalid_argument msg -> msg
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let contains_sub msg sub =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_mentions name msg subs =
  List.iter
    (fun sub ->
      Alcotest.(check bool)
        (Printf.sprintf "%s mentions %S in %S" name sub msg)
        true (contains_sub msg sub))
    subs

let test_invalid_args () =
  Alcotest.check_raises "h=0" (Invalid_argument "Distributed_tracking.create: h < 1") (fun () ->
      ignore (Dt.create ~h:0 ~tau:5));
  Alcotest.check_raises "tau=0" (Invalid_argument "Distributed_tracking.create: tau < 1")
    (fun () -> ignore (Dt.create ~h:3 ~tau:0));
  (* The increment diagnostics must name the offending site/argument and
     carry the full instance state (h, tau, totals, round, mode). *)
  let t = Dt.create ~h:3 ~tau:5 in
  let msg =
    capture_invalid "bad site" (fun () -> ignore (Dt.increment t ~site:3 ~by:1))
  in
  check_mentions "bad site" msg
    [ "bad site 3"; "valid sites are 0..2"; "h=3"; "tau=5"; "total=0"; "mode=" ];
  let msg =
    capture_invalid "negative site" (fun () -> ignore (Dt.increment t ~site:(-1) ~by:1))
  in
  check_mentions "negative site" msg [ "bad site -1"; "valid sites are 0..2" ];
  let msg =
    capture_invalid "bad weight" (fun () -> ignore (Dt.increment t ~site:0 ~by:0))
  in
  check_mentions "bad weight" msg [ "by <= 0"; "by=0"; "site=0"; "h=3" ];
  let msg =
    capture_invalid "negative weight" (fun () -> ignore (Dt.increment t ~site:2 ~by:(-7)))
  in
  check_mentions "negative weight" msg [ "by=-7"; "site=2" ];
  ignore (Dt.increment t ~site:0 ~by:3);
  ignore (Dt.increment t ~site:1 ~by:2);
  let msg =
    capture_invalid "dead instance" (fun () -> ignore (Dt.increment t ~site:0 ~by:1))
  in
  check_mentions "dead instance" msg
    [ "already mature"; "site=0"; "by=1"; "total=5"; "tau=5" ];
  (* State reported in the message reflects the live instance, not the
     creation-time snapshot: drive an instance mid-way and check total. *)
  let t2 = Dt.create ~h:4 ~tau:1_000 in
  for _ = 1 to 10 do
    ignore (Dt.increment t2 ~site:1 ~by:7)
  done;
  let msg =
    capture_invalid "live state" (fun () -> ignore (Dt.increment t2 ~site:9 ~by:1))
  in
  check_mentions "live state" msg [ "bad site 9"; "total=70"; "tau=1000" ]

(* Satellite: adversarial-scheduler message-bound property. The two
   scheduler extremes — all weight on one site vs perfect round-robin —
   plus random mixtures, all must respect [message_bound], and [rounds]
   must be monotone non-decreasing along any single execution. *)
let prop_message_bound_adversarial =
  QCheck.Test.make ~count:200 ~name:"message bound under adversarial schedulers"
    QCheck.(
      quad (int_range 0 2) (int_range 1 24) (int_range 1 200_000) small_int)
    (fun (mode, h, tau, seed) ->
      let rng = Prng.create ~seed in
      let t = Dt.create ~h ~tau in
      let bound = Dt.message_bound ~h ~tau in
      let i = ref 0 in
      let prev_rounds = ref (Dt.rounds t) in
      let ok = ref true in
      while not (Dt.is_mature t) do
        let site =
          match mode with
          | 0 -> 0 (* single hot site *)
          | 1 -> !i mod h (* strict round-robin *)
          | _ -> Prng.int rng h
        in
        let by = if mode = 2 then 1 + Prng.int rng 40 else 1 in
        ignore (Dt.increment t ~site ~by);
        incr i;
        let r = Dt.rounds t in
        if r < !prev_rounds then ok := false;
        prev_rounds := r;
        if Dt.messages t > bound then ok := false
      done;
      !ok && Dt.messages t <= bound)

let prop_exactness =
  QCheck.Test.make ~count:300 ~name:"maturity = first crossing (random schedules)"
    QCheck.(triple small_int (int_range 1 20) (int_range 1 5000))
    (fun (seed, h, tau) ->
      let rng = Prng.create ~seed in
      let t = Dt.create ~h ~tau in
      let total = ref 0 in
      let ok = ref true in
      while not (Dt.is_mature t) do
        let by = 1 + Prng.int rng 30 in
        let site = Prng.int rng h in
        let crossed_now = !total < tau && !total + by >= tau in
        total := !total + by;
        let reported = Dt.increment t ~site ~by in
        if reported <> crossed_now then ok := false
      done;
      !ok && Dt.total t = !total && Dt.messages t <= Dt.message_bound ~h ~tau)

let () =
  Alcotest.run "distributed_tracking"
    [
      ( "unit",
        [
          Alcotest.test_case "unweighted exact maturity" `Quick test_unweighted_exact_maturity;
          Alcotest.test_case "round-robin exact" `Quick test_round_robin_exact;
          Alcotest.test_case "single hot site" `Quick test_single_hot_site;
          Alcotest.test_case "weighted first crossing" `Quick test_weighted_first_crossing;
          Alcotest.test_case "huge single weight" `Quick test_huge_single_weight;
          Alcotest.test_case "weighted work not O(tau)" `Quick test_weighted_work_is_not_tau;
          Alcotest.test_case "message bound" `Quick test_message_bound;
          Alcotest.test_case "messages beat naive" `Quick test_messages_beat_naive;
          Alcotest.test_case "rounds logarithmic" `Quick test_rounds_logarithmic;
          Alcotest.test_case "small tau direct mode" `Quick test_small_tau_direct;
          Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_exactness;
          QCheck_alcotest.to_alcotest prop_message_bound_adversarial;
        ] );
    ]
