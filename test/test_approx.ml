(* The approximate tier's correctness contract is different from the
   exact engines' (test_engines.ml diffs maturity streams verbatim):
   an approximate engine promises *certified interval* answers and
   *never-early* maturity. So the properties here are:

   - containment: every sketch range answer [lower, upper] contains the
     exact count, across random op sequences and random cut points —
     equivalently, the answer is within its stated epsilon
     ((upper - lower) / 2 around the midpoint) of the exact answer;
   - never-early: any maturity an approximate engine reports is already
     a true maturity under an exact reference computed by brute force,
     and the certified W interval of every alive query contains the
     exact accumulated weight;
   - top-n exactness: the binary threshold search returns exactly the n
     nearest-maturity queries the fully sorted exact ranking puts first.

   The pinned-seed Scenario sweep (RTS_APPROX_SEEDS, `make check-approx`,
   the approx-equivalence CI job) re-checks never-early against the
   baseline engine on paper-style workloads, and that the approximate
   tier is not vacuous there (it does mature queries). *)

open Rts_core
open Rts_approx
module Prng = Rts_util.Prng

(* The registry learns about the approximate engines only on install. *)
let () = Install.install ()

let domain_hi = 1e5

(* ---- reference bookkeeping (brute force) --------------------------- *)

let count_in log ~lo ~hi =
  List.fold_left (fun acc (v, w) -> if lo <= v && v < hi then acc + w else acc) 0 log

(* Random float in [lo, hi) from the deterministic test PRNG. *)
let frange rng lo hi = lo +. ((hi -. lo) *. Prng.float rng 1.0)

(* Values mostly in-domain, sometimes outside (the sketches must route
   out-of-domain mass to their exact side counters, not into cells). *)
let rand_value rng =
  match Prng.int rng 20 with
  | 0 -> frange rng (-2e4) 0.
  | 1 -> frange rng domain_hi 1.4e5
  | _ -> frange rng 0. domain_hi

(* Ranges from a few buckets wide to half the domain, sometimes hanging
   off either edge of the sketch domain. *)
let rand_range rng =
  let width =
    match Prng.int rng 4 with
    | 0 -> frange rng 10. 500.
    | 1 -> frange rng 500. 5000.
    | _ -> frange rng 5000. 50000.
  in
  let lo = frange rng (-0.1 *. domain_hi) (1.05 *. domain_hi -. width) in
  (lo, lo +. width)

let summaries () =
  [
    ("crprecis", Crprecis.summary (Crprecis.create ()));
    ("heavy", Heavy.summary (Heavy.create ()));
  ]

(* ---- containment: exact within [lower, upper] at random cuts ------- *)

let containment_episode ~seed ~steps =
  let rng = Prng.create ~seed in
  let sums = summaries () in
  let log = ref [] in
  let probes = Array.init 12 (fun _ -> rand_range rng) in
  for step = 1 to steps do
    let v = rand_value rng and w = 1 + Prng.int rng 40 in
    List.iter (fun (_, s) -> s.Summary.insert v w) sums;
    log := (v, w) :: !log;
    (* Random cut points: roughly every 50 steps, audit every probe and
       a couple of fresh ranges on every summary. *)
    if Prng.int rng 50 = 0 || step = steps then
      Array.iter
        (fun (lo, hi) ->
          let exact = count_in !log ~lo ~hi in
          List.iter
            (fun (name, s) ->
              let est = s.Summary.range ~lo ~hi in
              if not (est.Summary.lower <= exact && exact <= est.Summary.upper) then
                Alcotest.failf
                  "%s: step %d range [%g, %g): exact %d outside [%d, %d]" name step lo
                  hi exact est.Summary.lower est.Summary.upper;
              (* The "stated epsilon" formulation: |midpoint - exact|
                 bounded by the half-width the summary itself reports. *)
              let mid = (est.Summary.lower + est.Summary.upper) / 2 in
              let eps = (est.Summary.upper - est.Summary.lower + 1) / 2 in
              if abs (mid - exact) > eps then
                Alcotest.failf "%s: step %d: answer %d +/- %d misses exact %d" name step
                  mid eps exact)
            sums)
        (Array.append probes [| rand_range rng; rand_range rng |])
  done

let prop_containment =
  QCheck.Test.make ~count:(Qcheck_env.count 30)
    ~name:"sketch answers contain the exact count (within stated epsilon)"
    QCheck.(pair (int_bound 100_000) (int_range 200 1200))
    (fun (seed, steps) ->
      containment_episode ~seed ~steps;
      true)

(* ---- never-early engines vs a brute-force reference ---------------- *)

type ref_query = { rect_lo : float; rect_hi : float; tau : int; mutable w : int }

let engine_episode ~seed ~steps (make_engine : unit -> Engine.t * (int -> int * int)) =
  let rng = Prng.create ~seed in
  let engine, bounds = make_engine () in
  let reference : (int, ref_query) Hashtbl.t = Hashtbl.create 64 in
  let next_id = ref 0 in
  let alive_ids () = Hashtbl.fold (fun id _ acc -> id :: acc) reference [] in
  for step = 1 to steps do
    (* Register with probability ~1/6; thresholds low enough that the
       certified lower bound (wide ranges, exact coarse levels) crosses
       them within the episode, keeping the property non-vacuous. *)
    if Prng.int rng 6 = 0 || Hashtbl.length reference = 0 then begin
      let lo, hi = rand_range rng in
      let id = !next_id in
      incr next_id;
      let tau = 50 + Prng.int rng 4000 in
      engine.Engine.register { Types.id; rect = Types.interval lo hi; threshold = tau };
      Hashtbl.replace reference id { rect_lo = lo; rect_hi = hi; tau; w = 0 }
    end;
    if Prng.int rng 40 = 0 && Hashtbl.length reference > 0 then begin
      let ids = alive_ids () in
      let victim = List.nth ids (Prng.int rng (List.length ids)) in
      engine.Engine.terminate victim;
      Hashtbl.remove reference victim
    end;
    let v = rand_value rng and w = 1 + Prng.int rng 40 in
    let matured = engine.Engine.process { Types.value = [| v |]; weight = w } in
    Hashtbl.iter
      (fun _ q -> if q.rect_lo <= v && v < q.rect_hi then q.w <- q.w + w)
      reference;
    (* Never-early: every reported maturity is a true maturity. *)
    List.iter
      (fun id ->
        match Hashtbl.find_opt reference id with
        | None -> Alcotest.failf "step %d: matured unknown/terminated id %d" step id
        | Some q ->
            if q.w < q.tau then
              Alcotest.failf "step %d: q%d matured EARLY: exact W %d < tau %d" step id
                q.w q.tau;
            Hashtbl.remove reference id)
      matured;
    (* Cut points: certified W interval must contain the exact W, and
       the snapshot's reported weight must never exceed it. *)
    if Prng.int rng 60 = 0 || step = steps then begin
      Hashtbl.iter
        (fun id q ->
          let l, u = bounds id in
          if not (l <= q.w && q.w <= u) then
            Alcotest.failf "step %d: q%d exact W %d outside certified [%d, %d]" step id
              q.w l u)
        reference;
      List.iter
        (fun ((q : Types.query), w) ->
          let r = Hashtbl.find reference q.Types.id in
          if w > r.w then
            Alcotest.failf "step %d: snapshot overstates q%d: %d > exact %d" step
              q.Types.id w r.w)
        (engine.Engine.alive_snapshot ())
    end
  done;
  (* The engine's own accounting agrees with the reference's alive set. *)
  Alcotest.(check int) "alive count" (Hashtbl.length reference) (engine.Engine.alive ())

let crprecis_factory () =
  let t = Crprecis_engine.create () in
  (Crprecis_engine.engine t, Crprecis_engine.bounds t)

let heavy_factory () =
  let t = Heavy_engine.create () in
  (Heavy_engine.engine t, Heavy_engine.bounds t)

let prop_never_early_crprecis =
  QCheck.Test.make ~count:(Qcheck_env.count 25)
    ~name:"crprecis engine: never early, certified bounds contain exact W"
    QCheck.(pair (int_bound 100_000) (int_range 400 2500))
    (fun (seed, steps) ->
      engine_episode ~seed ~steps crprecis_factory;
      true)

let prop_never_early_heavy =
  QCheck.Test.make ~count:(Qcheck_env.count 25)
    ~name:"heavy engine: never early, certified bounds contain exact W"
    QCheck.(pair (int_bound 100_000) (int_range 400 2500))
    (fun (seed, steps) ->
      engine_episode ~seed ~steps heavy_factory;
      true)

(* ---- top-n threshold search = sorted prefix ------------------------ *)

let prop_topn =
  QCheck.Test.make ~count:(Qcheck_env.count 200)
    ~name:"top-n threshold search = first n of the full sorted ranking"
    QCheck.(
      pair (int_bound 100_000) (pair (int_range 0 400) (int_bound 30)))
    (fun (seed, (m, n)) ->
      let rng = Prng.create ~seed in
      (* Synthetic snapshot with deliberately heavy slack ties. *)
      let snap =
        List.init m (fun id ->
            let tau = 10 + Prng.int rng 50 in
            let w = Prng.int rng tau in
            ({ Types.id; rect = Types.interval 0. 1.; threshold = tau }, w))
      in
      let got = Topn.closest_of_snapshot snap ~n in
      let full =
        List.map
          (fun ((q : Types.query), w) ->
            { Topn.id = q.Types.id; slack = q.Types.threshold - w; threshold = q.Types.threshold })
          snap
        |> List.sort (fun (a : Topn.entry) b ->
               if a.Topn.slack <> b.Topn.slack then compare a.Topn.slack b.Topn.slack
               else compare a.Topn.id b.Topn.id)
      in
      let expect = List.filteri (fun k _ -> k < n) full in
      if got <> expect then
        QCheck.Test.fail_reportf "topn mismatch: m=%d n=%d: got %d entries" m n
          (List.length got);
      true)

let test_topn_live_engine () =
  (* Against a live DT engine: the snapshot weights come from the DT
     slack machinery; the search must agree with sorting them. *)
  let rng = Prng.create ~seed:4242 in
  let e = Engine_registry.make ~name:"topn" ~dim:1 in
  List.iteri
    (fun id (lo, hi) ->
      e.Engine.register { Types.id; rect = Types.interval lo hi; threshold = 500 + Prng.int rng 3000 })
    (List.init 150 (fun _ -> rand_range rng));
  for _ = 1 to 2000 do
    ignore (e.Engine.process { Types.value = [| frange rng 0. domain_hi |]; weight = 1 + Prng.int rng 9 })
  done;
  let n = 10 in
  let got = Topn.closest e ~n in
  let expect =
    e.Engine.alive_snapshot ()
    |> List.map (fun ((q : Types.query), w) ->
           { Topn.id = q.Types.id; slack = q.Types.threshold - w; threshold = q.Types.threshold })
    |> List.sort (fun (a : Topn.entry) b ->
           if a.Topn.slack <> b.Topn.slack then compare a.Topn.slack b.Topn.slack
           else compare a.Topn.id b.Topn.id)
    |> List.filteri (fun k _ -> k < n)
  in
  Alcotest.(check int) "10 entries" n (List.length got);
  if got <> expect then Alcotest.fail "topn over live DT engine mismatches sorted prefix"

(* ---- heavy tracker's own query class ------------------------------- *)

let test_hot_ranges () =
  let hv = Heavy.create () in
  let rng = Prng.create ~seed:99 in
  (* Uniform background plus two deliberate hot spots. *)
  for _ = 1 to 5000 do
    Heavy.insert hv (frange rng 0. domain_hi) 1
  done;
  for _ = 1 to 3000 do
    Heavy.insert hv (frange rng 20000. 20600.) 5;
    Heavy.insert hv (frange rng 71000. 71500.) 7
  done;
  let hits = Heavy.hot hv ~threshold:8000 in
  let covers x =
    List.exists (fun r -> let lo, hi = r.Heavy.range in lo <= x && x < hi) hits
  in
  Alcotest.(check bool) "hot spot 1 found" true (covers 20300.);
  Alcotest.(check bool) "hot spot 2 found" true (covers 71250.);
  List.iter
    (fun r -> Alcotest.(check bool) "bounds ordered" true (r.Heavy.lower <= r.Heavy.upper))
    hits;
  (* Determinism: the same insert sequence reproduces the answer. *)
  let hv2 = Heavy.create () in
  let rng2 = Prng.create ~seed:99 in
  for _ = 1 to 5000 do
    Heavy.insert hv2 (frange rng2 0. domain_hi) 1
  done;
  for _ = 1 to 3000 do
    Heavy.insert hv2 (frange rng2 20000. 20600.) 5;
    Heavy.insert hv2 (frange rng2 71000. 71500.) 7
  done;
  if Heavy.hot hv2 ~threshold:8000 <> hits then Alcotest.fail "hot ranges not deterministic";
  (* top: descending by tracked weight, bounded count. *)
  let top = Heavy.top hv ~n:5 in
  Alcotest.(check bool) "top returns <= n" true (List.length top <= 5);
  let rec desc = function
    | a :: (b :: _ as rest) -> a.Heavy.lower >= b.Heavy.lower && desc rest
    | _ -> true
  in
  Alcotest.(check bool) "top is weight-descending" true (desc top)

(* ---- dyadic plumbing ----------------------------------------------- *)

let test_dyadic_cover () =
  let dy = Dyadic.create () in
  let rng = Prng.create ~seed:7 in
  for _ = 1 to 500 do
    let lo, hi = rand_range rng in
    let cov = Dyadic.cover dy ~lo ~hi in
    (* Inner cells must nest inside the queried interval... *)
    List.iter
      (fun c ->
        let clo, chi = Dyadic.cell_range dy c in
        if not (lo <= clo && chi <= hi) then
          Alcotest.failf "inner cell [%g, %g) escapes [%g, %g)" clo chi lo hi)
      cov.Dyadic.inner;
    (* ... and the outer decomposition covers every inner cell. *)
    let covered x =
      List.exists
        (fun c ->
          let clo, chi = Dyadic.cell_range dy c in
          clo <= x && x < chi)
        cov.Dyadic.outer
    in
    List.iter
      (fun c ->
        let clo, _ = Dyadic.cell_range dy c in
        if not (covered clo) then Alcotest.failf "outer misses inner cell at %g" clo)
      cov.Dyadic.inner
  done

let test_engine_edges () =
  let t = Crprecis_engine.create () in
  let e = Crprecis_engine.engine t in
  e.Engine.register { Types.id = 1; rect = Types.interval 0. 5000.; threshold = 10 };
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "crprecis: duplicate alive query id 1") (fun () ->
      e.Engine.register { Types.id = 1; rect = Types.interval 0. 1.; threshold = 5 });
  Alcotest.check_raises "terminate unknown" Not_found (fun () -> e.Engine.terminate 99);
  e.Engine.terminate 1;
  Alcotest.(check int) "empty" 0 (e.Engine.alive ());
  (* 1D only, enforced through the registry. *)
  (match Engine_registry.make ~name:"crprecis" ~dim:2 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "crprecis at dim 2 should fail");
  (* collisions: coarse levels are exact, fine levels collide in <= 1
     table with the default primes. *)
  let sk = Crprecis_engine.sketch (Crprecis_engine.create ()) in
  Alcotest.(check int) "root level exact" 0 (Crprecis.collisions_at sk 0);
  Alcotest.(check int) "finest level c=1" 1
    (Crprecis.collisions_at sk (Dyadic.depth (Crprecis.dyadic sk)))

(* ---- pinned-seed paper scenarios (make check-approx) ---------------- *)

let approx_seeds =
  match Sys.getenv_opt "RTS_APPROX_SEEDS" with
  | None | Some "" -> [ 7; 21; 63 ]
  | Some s ->
      String.split_on_char ',' s
      |> List.filter_map (fun x ->
             match String.trim x with "" -> None | x -> Some (int_of_string x))

let scenario_cfg seed =
  {
    Rts_workload.Scenario.default with
    Rts_workload.Scenario.dim = 1;
    seed;
    initial_queries = 400;
    tau = 4000;
    max_elements = 30_000;
    chunk = 512;
  }

(* An approximate engine's maturity log must be a *late subset* of the
   exact engine's on the identical workload: every id it matures, the
   exact engine matured at the same timestamp or earlier. And the tier
   must not be vacuous: the certified lower bounds do cross tau on
   paper-style workloads. *)
let scenario_never_early ~factory ~name seed =
  let cfg = scenario_cfg seed in
  let exact =
    Rts_workload.Scenario.run cfg (fun ~dim -> Baseline_engine.make ~dim)
  in
  let approx = Rts_workload.Scenario.run cfg factory in
  let exact_ts = Hashtbl.create 512 in
  List.iter
    (fun (ts, id) -> if not (Hashtbl.mem exact_ts id) then Hashtbl.add exact_ts id ts)
    exact.Rts_workload.Scenario.maturity_log;
  List.iter
    (fun (ts, id) ->
      match Hashtbl.find_opt exact_ts id with
      | None ->
          Alcotest.failf "seed %d %s: q%d matured but never matured exactly" seed name id
      | Some ts' ->
          if ts' > ts then
            Alcotest.failf "seed %d %s: q%d matured EARLY (approx ts %d < exact ts %d)"
              seed name id ts ts')
    approx.Rts_workload.Scenario.maturity_log;
  if approx.Rts_workload.Scenario.matured = 0 then
    Alcotest.failf "seed %d %s: vacuous (no approximate maturities)" seed name

let test_scenario_sweep () =
  List.iter
    (fun seed ->
      scenario_never_early ~name:"crprecis"
        ~factory:(fun ~dim:_ -> Crprecis_engine.make ())
        seed;
      scenario_never_early ~name:"heavy" ~factory:(fun ~dim:_ -> Heavy_engine.make ()) seed)
    approx_seeds

let () =
  Alcotest.run "approx"
    [
      ("dyadic", [ Alcotest.test_case "inner/outer cover" `Quick test_dyadic_cover ]);
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_containment;
          QCheck_alcotest.to_alcotest prop_never_early_crprecis;
          QCheck_alcotest.to_alcotest prop_never_early_heavy;
          QCheck_alcotest.to_alcotest prop_topn;
        ] );
      ( "topn",
        [ Alcotest.test_case "live DT engine sorted prefix" `Quick test_topn_live_engine ] );
      ( "heavy",
        [ Alcotest.test_case "hot/top ranges" `Quick test_hot_ranges ] );
      ("edges", [ Alcotest.test_case "engine edge cases" `Quick test_engine_edges ]);
      ( "scenario",
        [ Alcotest.test_case "pinned-seed never-early sweep" `Slow test_scenario_sweep ] );
    ]
