(* Cross-engine equivalence: every engine must report exactly the same
   maturities at exactly the same stream positions as the brute-force
   baseline, under adversarial little workloads — tight integer-ish domains
   (to force shared endpoints and boundary hits), mixed weights, random
   registrations and terminations. This is the central correctness property
   of the repository: the paper's algorithm is *exact*, not approximate. *)

open Rts_core
module Prng = Rts_util.Prng

let mk_rect rng ~dim ~domain =
  Array.init dim (fun _ ->
      let a = float_of_int (Prng.int rng domain) in
      let b = float_of_int (Prng.int rng domain) in
      let lo = min a b and hi = max a b in
      (lo, hi +. 1.))
  |> Types.rect_make

let mk_elem rng ~dim ~domain ~max_weight =
  {
    Types.value = Array.init dim (fun _ -> float_of_int (Prng.int rng domain));
    weight = 1 + Prng.int rng max_weight;
  }

(* Apply one identical op sequence to all engines and diff their outputs. *)
let simulate ~seed ~dim ~steps ~domain ~max_weight ~max_tau ~p_reg ~p_term factories =
  let engines = List.map (fun f -> f ~dim) factories in
  let rng = Prng.create ~seed in
  let next_id = ref 0 in
  let alive = ref [] in
  let total_matured = ref 0 in
  for step = 1 to steps do
    if Prng.bernoulli rng p_reg || !alive = [] then begin
      let q =
        {
          Types.id = !next_id;
          rect = mk_rect rng ~dim ~domain;
          threshold = 1 + Prng.int rng max_tau;
        }
      in
      incr next_id;
      alive := q.id :: !alive;
      List.iter (fun (e : Engine.t) -> e.register q) engines
    end;
    if !alive <> [] && Prng.bernoulli rng p_term then begin
      let victim = List.nth !alive (Prng.int rng (List.length !alive)) in
      alive := List.filter (fun id -> id <> victim) !alive;
      List.iter (fun (e : Engine.t) -> e.terminate victim) engines
    end;
    let e = mk_elem rng ~dim ~domain ~max_weight in
    let outputs = List.map (fun (eng : Engine.t) -> (eng.name, eng.process e)) engines in
    (match outputs with
    | [] -> ()
    | (ref_name, ref_out) :: rest ->
        List.iter
          (fun (name, out) ->
            Alcotest.(check (list int))
              (Printf.sprintf "step %d: %s vs %s" step name ref_name)
              ref_out out)
          rest;
        total_matured := !total_matured + List.length ref_out;
        alive := List.filter (fun id -> not (List.mem id ref_out)) !alive);
    let alive_counts = List.map (fun (eng : Engine.t) -> eng.alive ()) engines in
    List.iter
      (fun c -> Alcotest.(check int) (Printf.sprintf "step %d: alive count" step)
          (List.length !alive) c)
      alive_counts
  done;
  !total_matured

let baseline ~dim = Baseline_engine.make ~dim

let dt ~dim = Dt_engine.make ~dim

let stab1d ~dim =
  assert (dim = 1);
  Stab1d_engine.make ()

let stab2d ~dim =
  assert (dim = 2);
  Stab2d_engine.make ()

let rtree ~dim = Rtree_engine.make ~dim

let check_matured_nonzero n =
  Alcotest.(check bool) "some queries matured (workload not vacuous)" true (n > 50)

let test_1d_all () =
  let n =
    simulate ~seed:101 ~dim:1 ~steps:4000 ~domain:25 ~max_weight:5 ~max_tau:60 ~p_reg:0.15
      ~p_term:0.03
      [ baseline; dt; stab1d; rtree ]
  in
  check_matured_nonzero n

let test_2d_all () =
  let n =
    simulate ~seed:202 ~dim:2 ~steps:3000 ~domain:12 ~max_weight:5 ~max_tau:50 ~p_reg:0.2
      ~p_term:0.03
      [ baseline; dt; stab2d; rtree ]
  in
  check_matured_nonzero n

let test_3d_dt () =
  let n =
    simulate ~seed:303 ~dim:3 ~steps:2000 ~domain:8 ~max_weight:4 ~max_tau:40 ~p_reg:0.25
      ~p_term:0.02
      [ baseline; dt; rtree ]
  in
  check_matured_nonzero n

let test_1d_unit_weights () =
  let n =
    simulate ~seed:404 ~dim:1 ~steps:4000 ~domain:20 ~max_weight:1 ~max_tau:40 ~p_reg:0.15
      ~p_term:0.03
      [ baseline; dt; stab1d ]
  in
  check_matured_nonzero n

let test_1d_heavy_weights () =
  (* Weights far above thresholds: exercises the weighted-DT endgame where
     one element overshoots several rounds at once. *)
  let n =
    simulate ~seed:505 ~dim:1 ~steps:2000 ~domain:15 ~max_weight:500 ~max_tau:800 ~p_reg:0.2
      ~p_term:0.02
      [ baseline; dt; stab1d ]
  in
  check_matured_nonzero n

let test_1d_no_terminations () =
  let n =
    simulate ~seed:606 ~dim:1 ~steps:3000 ~domain:25 ~max_weight:5 ~max_tau:50 ~p_reg:0.15
      ~p_term:0.
      [ baseline; dt; stab1d; rtree ]
  in
  check_matured_nonzero n

let test_static_batch () =
  (* create_static must behave exactly like sequential registration. *)
  let rng = Prng.create ~seed:707 in
  let dim = 1 and domain = 30 in
  let queries =
    List.init 200 (fun id ->
        { Types.id; rect = mk_rect rng ~dim ~domain; threshold = 1 + Prng.int rng 80 })
  in
  let static = Dt_engine.create_static ~dim queries in
  let dynamic = Dt_engine.create ~dim () in
  List.iter (Dt_engine.register dynamic) queries;
  let oracle = Baseline_engine.create ~dim () in
  List.iter (Baseline_engine.register oracle) queries;
  for step = 1 to 3000 do
    let e = mk_elem rng ~dim ~domain ~max_weight:4 in
    let a = Dt_engine.process static e in
    let b = Dt_engine.process dynamic e in
    let c = Baseline_engine.process oracle e in
    Alcotest.(check (list int)) (Printf.sprintf "step %d static=oracle" step) c a;
    Alcotest.(check (list int)) (Printf.sprintf "step %d dynamic=oracle" step) c b
  done

let test_progress_agrees () =
  let rng = Prng.create ~seed:808 in
  let dim = 2 and domain = 10 in
  let dt = Dt_engine.create ~dim () in
  let oracle = Baseline_engine.create ~dim () in
  let queries =
    List.init 100 (fun id ->
        { Types.id; rect = mk_rect rng ~dim ~domain; threshold = 10_000 })
  in
  List.iter
    (fun q ->
      Dt_engine.register dt q;
      Baseline_engine.register oracle q)
    queries;
  for _ = 1 to 2000 do
    let e = mk_elem rng ~dim ~domain ~max_weight:5 in
    ignore (Dt_engine.process dt e);
    ignore (Baseline_engine.process oracle e)
  done;
  List.iter
    (fun (q : Types.query) ->
      Alcotest.(check int)
        (Printf.sprintf "W(q%d)" q.id)
        (Baseline_engine.progress oracle q.id)
        (Dt_engine.progress dt q.id))
    queries

let test_identical_queries_mass () =
  (* 500 identical queries: maximal canonical-set sharing, simultaneous
     maturity of a whole cohort. *)
  let dim = 1 in
  let engines = [ baseline ~dim; dt ~dim; stab1d ~dim; rtree ~dim ] in
  List.iter
    (fun (e : Engine.t) ->
      e.register_batch
        (List.init 500 (fun id ->
             { Types.id; rect = Types.interval 10. 20.; threshold = 50 })))
    engines;
  let rng = Prng.create ~seed:901 in
  let rec run step =
    if step > 500 then Alcotest.fail "never matured"
    else begin
      let e = mk_elem rng ~dim ~domain:30 ~max_weight:5 in
      let outs = List.map (fun (eng : Engine.t) -> eng.process e) engines in
      match outs with
      | first :: rest ->
          List.iter (fun o -> Alcotest.(check (list int)) "agree" first o) rest;
          if first <> [] then begin
            Alcotest.(check int) "whole cohort together" 500 (List.length first);
            List.iter
              (fun (eng : Engine.t) -> Alcotest.(check int) "drained" 0 (eng.alive ()))
              engines
          end
          else run (step + 1)
      | [] -> ()
    end
  in
  run 1

let test_threshold_one () =
  (* Threshold 1 fires on the first covered element — the DT endgame from
     the very start. *)
  let dim = 1 in
  let engines = [ baseline ~dim; dt ~dim; stab1d ~dim ] in
  List.iter
    (fun (e : Engine.t) ->
      e.register { Types.id = 0; rect = Types.interval 0. 5.; threshold = 1 })
    engines;
  List.iter
    (fun (e : Engine.t) ->
      Alcotest.(check (list int)) "misses" [] (e.process { Types.value = [| 9. |]; weight = 100 }))
    engines;
  List.iter
    (fun (e : Engine.t) ->
      Alcotest.(check (list int)) "fires" [ 0 ] (e.process { Types.value = [| 3. |]; weight = 1 }))
    engines

let test_one_sided_ranges_dt_vs_baseline () =
  (* Infinite bounds (one-sided ranges) across dt and baseline; the
     stabbing structures are finite-geometry and excluded by design. *)
  let dim = 2 in
  let engines = [ baseline ~dim; dt ~dim ] in
  let rects =
    [
      Types.rect_make [| (neg_infinity, 5.); (0., 10.) |];
      Types.rect_make [| (2., infinity); (neg_infinity, infinity) |];
      Types.rect_make [| (neg_infinity, infinity); (3., 4.) |];
    ]
  in
  List.iter
    (fun (e : Engine.t) ->
      List.iteri (fun id rect -> e.register { Types.id = id; rect; threshold = 20 }) rects)
    engines;
  let rng = Prng.create ~seed:902 in
  for step = 1 to 400 do
    let e = mk_elem rng ~dim ~domain:12 ~max_weight:3 in
    let outs = List.map (fun (eng : Engine.t) -> eng.process e) engines in
    match outs with
    | [ a; b ] -> Alcotest.(check (list int)) (Printf.sprintf "step %d" step) a b
    | _ -> assert false
  done

let test_elements_on_shared_grid () =
  (* Every element value is exactly a query endpoint: the half-open
     semantics must agree across engines at every boundary. *)
  let dim = 1 in
  let engines = [ baseline ~dim; dt ~dim; stab1d ~dim; rtree ~dim ] in
  List.iter
    (fun (e : Engine.t) ->
      e.register_batch
        (List.init 20 (fun id ->
             let lo = float_of_int id in
             { Types.id; rect = Types.interval lo (lo +. 3.); threshold = 8 })))
    engines;
  let rng = Prng.create ~seed:903 in
  for step = 1 to 600 do
    let e = { Types.value = [| float_of_int (Prng.int rng 24) |]; weight = 1 + Prng.int rng 2 } in
    let outs = List.map (fun (eng : Engine.t) -> eng.process e) engines in
    match outs with
    | first :: rest ->
        List.iter
          (fun o -> Alcotest.(check (list int)) (Printf.sprintf "step %d" step) first o)
          rest
    | [] -> ()
  done

let test_negative_coordinates () =
  let dim = 2 in
  let engines = [ baseline ~dim; dt ~dim; stab2d ~dim; rtree ~dim ] in
  let rng = Prng.create ~seed:904 in
  let queries =
    List.init 60 (fun id ->
        let mk () =
          let a = float_of_int (Prng.int rng 20 - 10) in
          (a, a +. 1. +. float_of_int (Prng.int rng 8))
        in
        { Types.id; rect = Types.rect_make [| mk (); mk () |]; threshold = 30 })
  in
  List.iter (fun (e : Engine.t) -> e.register_batch queries) engines;
  for step = 1 to 800 do
    let e =
      {
        Types.value = Array.init dim (fun _ -> float_of_int (Prng.int rng 28 - 14));
        weight = 1 + Prng.int rng 4;
      }
    in
    let outs = List.map (fun (eng : Engine.t) -> eng.process e) engines in
    match outs with
    | first :: rest ->
        List.iter
          (fun o -> Alcotest.(check (list int)) (Printf.sprintf "step %d" step) first o)
          rest
    | [] -> ()
  done

(* qcheck: random parameters for the whole simulation. *)
let prop_equivalence =
  QCheck.Test.make ~count:(Qcheck_env.count 25) ~name:"random workloads: dt = baseline"
    QCheck.(
      quad (int_bound 10_000) (int_range 1 3) (int_range 2 20) (int_range 1 200))
    (fun (seed, dim, domain, max_tau) ->
      let n =
        simulate ~seed ~dim ~steps:600 ~domain ~max_weight:8 ~max_tau ~p_reg:0.2 ~p_term:0.05
          [ baseline; dt ]
      in
      ignore n;
      true)

let () =
  Alcotest.run "engines"
    [
      ( "equivalence",
        [
          Alcotest.test_case "1d: baseline = dt = interval-tree = r-tree" `Quick test_1d_all;
          Alcotest.test_case "2d: baseline = dt = seg-intv = r-tree" `Quick test_2d_all;
          Alcotest.test_case "3d: baseline = dt = r-tree" `Quick test_3d_dt;
          Alcotest.test_case "1d counting (unit weights)" `Quick test_1d_unit_weights;
          Alcotest.test_case "1d heavy weights (DT overshoot)" `Quick test_1d_heavy_weights;
          Alcotest.test_case "1d without terminations" `Quick test_1d_no_terminations;
          Alcotest.test_case "static batch = dynamic = oracle" `Quick test_static_batch;
          Alcotest.test_case "progress agrees with oracle" `Quick test_progress_agrees;
          Alcotest.test_case "500 identical queries" `Quick test_identical_queries_mass;
          Alcotest.test_case "threshold 1" `Quick test_threshold_one;
          Alcotest.test_case "one-sided ranges" `Quick test_one_sided_ranges_dt_vs_baseline;
          Alcotest.test_case "elements on shared grid" `Quick test_elements_on_shared_grid;
          Alcotest.test_case "negative coordinates" `Quick test_negative_coordinates;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_equivalence ]);
    ]
