(* Rts_obs: the unified metrics/observability layer.

   Three layers of checks:
   1. Metrics registry semantics (counters/gauges/histograms, snapshot,
      diff, merge, monotonicity law) and rendering (JSON round-trip
      through our own parser, Prometheus text shape).
   2. Engine-agnostic laws: every engine's [metrics ()] snapshot uses the
      uniform names and its counters are monotone across process calls,
      with [elements_total]/[registered_total] matching the driver's own
      bookkeeping.
   3. DT specifics: the engine's metric snapshot agrees with the raw
      [Endpoint_tree.stats] telemetry it is derived from. *)

open Rts_core
module Metrics = Rts_obs.Metrics
module Json = Rts_obs.Json

(* ---------------- 1. registry semantics ---------------- *)

let test_counter_basics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "ops_total" in
  Alcotest.(check int) "starts at 0" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "42" 42 (Metrics.value c);
  let c' = Metrics.counter reg "ops_total" in
  Metrics.incr c';
  Alcotest.(check int) "get-or-create aliases" 43 (Metrics.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Metrics.add: negative delta") (fun () -> Metrics.add c (-1));
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: \"ops_total\" already registered as a counter") (fun () ->
      ignore (Metrics.gauge reg "ops_total"))

let test_gauge_and_histogram () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "alive" in
  Metrics.set g 7.;
  Metrics.set g 3.;
  Alcotest.(check (float 0.)) "gauge holds last value" 3. (Metrics.gauge_value g);
  let h = Metrics.histogram ~buckets:[| 1.; 10.; 100. |] reg "lat_us" in
  List.iter (Metrics.observe h) [ 0.5; 5.; 50.; 500. ];
  match Metrics.get (Metrics.snapshot reg) "lat_us" with
  | Some (Metrics.Histogram s) ->
      Alcotest.(check int) "count" 4 s.Metrics.count;
      Alcotest.(check (float 1e-9)) "sum" 555.5 s.Metrics.sum;
      (* explicit bounds plus the implicit +inf overflow bucket *)
      Alcotest.(check (list int)) "cumulative buckets" [ 1; 2; 3; 4 ]
        (Array.to_list (Array.map snd s.Metrics.buckets))
  | _ -> Alcotest.fail "histogram missing from snapshot"

let test_snapshot_diff_merge () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "n_total" in
  let g = Metrics.gauge reg "level" in
  Metrics.add c 10;
  Metrics.set g 1.;
  let before = Metrics.snapshot reg in
  Metrics.add c 5;
  Metrics.set g 9.;
  let after = Metrics.snapshot reg in
  let d = Metrics.diff ~before ~after in
  Alcotest.(check int) "counter delta" 5 (Metrics.counter_value d "n_total");
  (match Metrics.get d "level" with
  | Some (Metrics.Gauge v) -> Alcotest.(check (float 0.)) "gauge takes after" 9. v
  | _ -> Alcotest.fail "gauge missing from diff");
  Alcotest.(check bool) "monotone" true (Metrics.is_monotone ~before ~after);
  Alcotest.(check bool) "reverse not monotone" false (Metrics.is_monotone ~before:after ~after:before);
  let m = Metrics.merge before d in
  Alcotest.(check int) "merge restores total" 15 (Metrics.counter_value m "n_total");
  Alcotest.(check int) "absent counter reads 0" 0 (Metrics.counter_value d "nope_total")

let test_json_roundtrip () =
  (* Render a snapshot to JSON, print it with our printer, parse it back
     with our parser: the values must survive. This exercises exactly the
     pipeline `bench --json` -> `make check` validation uses. *)
  let reg = Metrics.create () in
  Metrics.add (Metrics.counter reg "a_total") 123456789;
  Metrics.set (Metrics.gauge reg "g") 2.5;
  Metrics.observe (Metrics.histogram reg "h_us") 42.;
  let j = Metrics.to_json (Metrics.snapshot reg) in
  let s = Json.to_string ~indent:2 j in
  let j' = Json.of_string s in
  (match Option.bind (Json.member "a_total" j') Json.get_num with
  | Some v -> Alcotest.(check (float 0.)) "counter through JSON" 123456789. v
  | None -> Alcotest.fail "a_total missing");
  (match Option.bind (Json.member "g" j') Json.get_num with
  | Some v -> Alcotest.(check (float 0.)) "gauge through JSON" 2.5 v
  | None -> Alcotest.fail "g missing");
  match Option.bind (Json.member "h_us" j') (Json.member "count") with
  | Some (Json.Num 1.) -> ()
  | _ -> Alcotest.fail "histogram count missing"

let test_json_parser_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "accepted %S" s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_prometheus_shape () =
  let reg = Metrics.create () in
  Metrics.add (Metrics.counter reg "sig_total") 3;
  Metrics.set (Metrics.gauge reg "alive") 2.;
  let text = Metrics.to_prometheus ~prefix:"rts_" (Metrics.snapshot reg) in
  let has needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "TYPE line" true (has "# TYPE rts_sig_total counter");
  Alcotest.(check bool) "sample" true (has "rts_sig_total 3");
  Alcotest.(check bool) "gauge sample" true (has "rts_alive 2")

(* ---------------- 2. engine-agnostic laws ---------------- *)

let engines : (string * (dim:int -> Engine.t)) list =
  [
    ("dt", fun ~dim -> Dt_engine.make ~dim);
    ("dt-eager", fun ~dim -> Dt_engine.make_eager ~dim);
    ("baseline", fun ~dim -> Baseline_engine.make ~dim);
    ("interval-tree", fun ~dim:_ -> Stab1d_engine.make ());
    ("r-tree", fun ~dim -> Rtree_engine.make ~dim);
  ]

let q ~id ~threshold (lo, hi) =
  { Types.id; rect = Types.rect_make [| (lo, hi) |]; threshold }

let elem1 x w = { Types.value = [| x |]; weight = w }

let drive (e : Engine.t) rng steps =
  let open Rts_util in
  for _ = 1 to steps do
    ignore (e.Engine.process (elem1 (float_of_int (Prng.int rng 30)) (1 + Prng.int rng 3)))
  done

let test_engine_metrics_uniform_and_monotone () =
  List.iter
    (fun (name, factory) ->
      let e = factory ~dim:1 in
      let rng = Rts_util.Prng.create ~seed:17 in
      e.Engine.register_batch
        (List.init 50 (fun id ->
             let a = float_of_int (Rts_util.Prng.int rng 25) in
             q ~id ~threshold:(20 + Rts_util.Prng.int rng 80) (a, a +. 4.)));
      let check_names snap =
        List.iter
          (fun metric ->
            Alcotest.(check bool)
              (Printf.sprintf "%s exposes %s" name metric)
              true
              (Metrics.get snap metric <> None))
          [ "elements_total"; "registered_total"; "terminated_total"; "matured_total"; "alive" ]
      in
      let snap0 = e.Engine.metrics () in
      check_names snap0;
      Alcotest.(check int)
        (name ^ ": registered_total after batch")
        50
        (Metrics.counter_value snap0 "registered_total");
      let prev = ref snap0 in
      for window = 1 to 5 do
        drive e rng 100;
        let snap = e.Engine.metrics () in
        Alcotest.(check bool)
          (Printf.sprintf "%s: counters monotone (window %d)" name window)
          true
          (Metrics.is_monotone ~before:!prev ~after:snap);
        prev := snap
      done;
      let final = !prev in
      Alcotest.(check int)
        (name ^ ": elements_total = driver count")
        500
        (Metrics.counter_value final "elements_total");
      (* alive gauge matches the engine's own alive () *)
      (match Metrics.get final "alive" with
      | Some (Metrics.Gauge v) ->
          Alcotest.(check int) (name ^ ": alive gauge") (e.Engine.alive ()) (int_of_float v)
      | _ -> Alcotest.fail (name ^ ": alive gauge missing"));
      (* conservation: everything registered is alive, matured or terminated *)
      Alcotest.(check int)
        (name ^ ": registered = alive + matured + terminated")
        (Metrics.counter_value final "registered_total")
        (e.Engine.alive ()
        + Metrics.counter_value final "matured_total"
        + Metrics.counter_value final "terminated_total"))
    engines

(* ---------------- 3. DT metrics agree with raw telemetry ---------------- *)

let test_dt_metrics_agree_with_stats () =
  let t = Dt_engine.create ~dim:1 () in
  let rng = Rts_util.Prng.create ~seed:23 in
  Dt_engine.register_batch t
    (List.init 120 (fun id ->
         let a = float_of_int (Rts_util.Prng.int rng 20) in
         q ~id ~threshold:(30 + Rts_util.Prng.int rng 120) (a, a +. 3.)));
  for _ = 1 to 800 do
    ignore (Dt_engine.process t (elem1 (float_of_int (Rts_util.Prng.int rng 25)) (1 + Rts_util.Prng.int rng 4)))
  done;
  let e = Dt_engine.engine t in
  let snap = e.Engine.metrics () in
  let st = Dt_engine.stats t in
  Alcotest.(check int) "signals" st.Endpoint_tree.signals
    (Metrics.counter_value snap "dt_signals_total");
  Alcotest.(check int) "round ends" st.Endpoint_tree.round_ends
    (Metrics.counter_value snap "dt_round_ends_total");
  Alcotest.(check int) "heap ops" st.Endpoint_tree.heap_ops
    (Metrics.counter_value snap "dt_heap_ops_total");
  Alcotest.(check int) "node updates" st.Endpoint_tree.node_updates
    (Metrics.counter_value snap "dt_node_updates_total");
  Alcotest.(check int) "rebuilds" (Dt_engine.rebuild_count t)
    (Metrics.counter_value snap "rebuilds_total");
  (match Metrics.get snap "trees" with
  | Some (Metrics.Gauge v) ->
      Alcotest.(check int) "trees gauge" (Dt_engine.tree_count t) (int_of_float v)
  | _ -> Alcotest.fail "trees gauge missing");
  Alcotest.(check bool) "did real DT work" true
    (Metrics.counter_value snap "dt_signals_total" > 0)

let () =
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "gauge + histogram" `Quick test_gauge_and_histogram;
          Alcotest.test_case "snapshot / diff / merge" `Quick test_snapshot_diff_merge;
          Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "JSON parser rejects garbage" `Quick test_json_parser_rejects_garbage;
          Alcotest.test_case "prometheus text shape" `Quick test_prometheus_shape;
        ] );
      ( "engines",
        [
          Alcotest.test_case "uniform names + monotone counters" `Quick
            test_engine_metrics_uniform_and_monotone;
          Alcotest.test_case "dt snapshot = raw telemetry" `Quick test_dt_metrics_agree_with_stats;
        ] );
    ]
