(* Shared helper: scale qcheck case counts from the environment.

   CI's nightly deep sweep runs the same suites with QCHECK_COUNT=2000;
   the default PR gate keeps each suite's own (fast) default. Invalid or
   unset values fall back to the suite default, so a stray environment
   never silently weakens a run to zero cases. *)

let count default =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | None | Some "" -> default
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ ->
          Printf.eprintf "qcheck_env: ignoring invalid QCHECK_COUNT=%S (using %d)\n%!" s default;
          default)
