(* Benchmark harness reproducing every figure of the paper's evaluation
   (Section 8: Figures 3-8; the paper has no result tables), plus two
   extras: a Bechamel steady-state microbenchmark and an ablation study.

   All parameters default to 1/100 of the paper's scale with the tau/m
   ratio preserved (DESIGN.md, substitution 1), so every run keeps the
   paper's workload geometry: queries mature around tau/10 timestamps and
   10% of queries survive to maturity. Use --scale to grow everything
   proportionally.

   Usage:
     dune exec bench/main.exe                 # everything, default scale
     dune exec bench/main.exe -- fig4 --scale 2
     dune exec bench/main.exe -- micro
     dune exec bench/main.exe -- --help       # list targets            *)

open Rts_core
open Rts_workload
module Json = Rts_obs.Json
module Metrics = Rts_obs.Metrics

let pf = Format.printf

(* ---------------------------------------------------------------- *)
(* Engine rosters, as in the paper's Section 8 per dimensionality.  *)

let engines_1d : (string * (dim:int -> Engine.t)) list =
  [
    ("dt", fun ~dim -> Dt_engine.make ~dim);
    ("baseline", fun ~dim -> Baseline_engine.make ~dim);
    ("interval-tree", fun ~dim:_ -> Stab1d_engine.make ());
  ]

let engines_2d : (string * (dim:int -> Engine.t)) list =
  [
    ("dt", fun ~dim -> Dt_engine.make ~dim);
    ("baseline", fun ~dim -> Baseline_engine.make ~dim);
    ("seg-intv", fun ~dim:_ -> Stab2d_engine.make ());
    ("r-tree", fun ~dim -> Rtree_engine.make ~dim);
  ]

let engines_for dim = if dim = 1 then engines_1d else engines_2d

(* ---------------------------------------------------------------- *)
(* Output helpers                                                    *)

let hr () = pf "%s@." (String.make 78 '-')

let header title =
  hr ();
  pf "%s@." title;
  hr ()

(* Align several engines' traces on element counts and print a series
   table with ~rows rows: per-operation cost (us) per engine. *)
let print_trace_table ~rows (results : Scenario.result list) =
  match results with
  | [] -> ()
  | first :: _ ->
      pf "@[<h>%-10s %8s" "elements" "alive";
      List.iter (fun (r : Scenario.result) -> pf " %14s" r.engine_name) results;
      pf "@]@.";
      let n = Array.length first.trace in
      let rows = min rows n in
      for i = 0 to rows - 1 do
        let idx = if rows = 1 then 0 else i * (n - 1) / (rows - 1) in
        let tp = first.trace.(idx) in
        pf "@[<h>%-10d %8d" tp.Scenario.elements_done tp.Scenario.alive;
        List.iter
          (fun (r : Scenario.result) ->
            if idx < Array.length r.trace then pf " %14.3f" r.trace.(idx).Scenario.avg_us
            else pf " %14s" "-")
          results;
        pf "@]@."
      done

let print_total_row label (results : Scenario.result list) =
  pf "@[<h>%-10s" label;
  List.iter (fun (r : Scenario.result) -> pf " %14.3f" r.total_seconds) results;
  pf "@]@."

let print_total_header first_col (names : string list) =
  pf "@[<h>%-10s" first_col;
  List.iter (fun n -> pf " %14s" n) names;
  pf "@]@.";
  pf "@[<h>%-10s" "";
  List.iter (fun _ -> pf " %14s" "(seconds)") names;
  pf "@]@."

(* ---------------------------------------------------------------- *)
(* Scaled default parameters (paper scale / 100, ratios preserved)   *)

type params = {
  scale : float;
  seed : int;
  json : bool; (* also write a BENCH_<fig>.json trajectory *)
  reps : int; (* timed repetitions per configuration; the median is reported *)
  m : int; (* paper: 1M *)
  tau : int; (* paper: 20M *)
  n_dynamic : int; (* paper: 3M *)
  horizon : int; (* paper: 2M *)
}

let params_of ~scale ~seed ~json ~reps =
  let s x = max 1 (int_of_float (float_of_int x *. scale)) in
  {
    scale;
    seed;
    json;
    reps = max 1 reps;
    m = s 10_000;
    tau = s 200_000;
    n_dynamic = s 30_000;
    horizon = s 20_000;
  }

(* ---------------------------------------------------------------- *)
(* BENCH_<fig>.json: machine-readable trajectories.                  *)
(* Every run funnels through [run_one]; with --json the scenario is  *)
(* driven by [Scenario.run_traced] so each trace window carries its  *)
(* metric delta, and the accumulated runs are flushed per figure by  *)
(* [emit_json].                                                      *)

let mode_str = function
  | Scenario.Static -> "static"
  | Scenario.Stochastic _ -> "stochastic"
  | Scenario.Fixed_load -> "fixed-load"

let log2 x = log (float_of_int x) /. log 2.

(* Analytic O(h log tau) DT message budget mirrored from the test
   suite's telemetry-bound assertion (test_endpoint_tree): per query
   8 * h_max * (log2 tau + 2) signals with h_max = (2 (log2 2m + 1))^d;
   dynamic scenarios migrate each query O(log m) times, adding one more
   logarithmic factor. *)
let dt_message_budget ~dim ~m ~tau ~static =
  let m = max 2 m in
  let h_max = (2. *. (log2 (2 * m) +. 1.)) ** float_of_int dim in
  let per_query = 8. *. h_max *. (log2 (max 2 tau) +. 2.) in
  let migration = if static then 1. else log2 (2 * m) +. 2. in
  int_of_float (float_of_int m *. per_query *. migration)

let trace_point_json (tp : Scenario.trace_point) =
  Json.Obj
    [
      ("elements", Json.int tp.Scenario.elements_done);
      ("alive", Json.int tp.Scenario.alive);
      ("avg_us", Json.Num tp.Scenario.avg_us);
      ("dt_signals", Json.int (Metrics.counter_value tp.Scenario.metrics "dt_signals_total"));
    ]

let result_json ?stability (r : Scenario.result) =
  let fm = r.Scenario.final_metrics in
  let cfg = r.Scenario.config in
  let dt_fields =
    match Metrics.get fm "dt_signals_total" with
    | Some (Metrics.Counter messages) ->
        let static = cfg.Scenario.mode = Scenario.Static in
        let budget =
          dt_message_budget ~dim:cfg.Scenario.dim ~m:(max 1 r.Scenario.registered)
            ~tau:cfg.Scenario.tau ~static
        in
        [
          ("dt_messages", Json.int messages);
          ("dt_message_budget", Json.int budget);
          ("dt_budget_ok", Json.Bool (messages <= budget));
        ]
    | _ -> []
  in
  let stability_fields =
    match stability with
    | None -> []
    | Some (reps, tmin, tmax) ->
        [
          ("reps", Json.int reps);
          ("total_seconds_min", Json.Num tmin);
          ("total_seconds_max", Json.Num tmax);
        ]
  in
  Json.Obj
    ([
       ("engine", Json.Str r.Scenario.engine_name);
       ("dim", Json.int cfg.Scenario.dim);
       ("m0", Json.int cfg.Scenario.initial_queries);
       ("tau", Json.int cfg.Scenario.tau);
       ("mode", Json.Str (mode_str cfg.Scenario.mode));
       ("seed", Json.int cfg.Scenario.seed);
       ("total_seconds", Json.Num r.Scenario.total_seconds);
       ("per_op_us", Json.Num (r.Scenario.total_seconds *. 1e6 /. float_of_int (max 1 r.Scenario.ops)));
       ("elements", Json.int r.Scenario.elements);
       ("registered", Json.int r.Scenario.registered);
       ("matured", Json.int r.Scenario.matured);
       ("terminated", Json.int r.Scenario.terminated);
       ("ops", Json.int r.Scenario.ops);
       ("metrics", Metrics.to_json fm);
       ("trace", Json.List (Array.to_list (Array.map trace_point_json r.Scenario.trace)));
     ]
    @ stability_fields @ dt_fields)

(* GC environment stamp for every emitted document: reps are separated
   by [Gc.full_major] (see [measure]), so numbers are comparable only
   among runs produced under the same collector configuration — record
   it instead of assuming it. *)
let gc_params_json () =
  let c = Gc.get () in
  Json.Obj
    [
      ("minor_heap_words", Json.int c.Gc.minor_heap_size);
      ("space_overhead", Json.int c.Gc.space_overhead);
      ("full_major_between_reps", Json.Bool true);
      ("ocaml_version", Json.Str Sys.ocaml_version);
    ]

let runs_acc : Json.t list ref = ref []

(* Warmup + median-of-k: every timed configuration first does a short
   warmup run (same workload, truncated to a few chunks) to page in code
   and warm the allocator, then [p.reps] full repetitions on fresh
   engines. The median run is reported; min/max of the repetitions'
   wall-clock land in the JSON so a noisy machine is visible instead of
   silently distorting one number. Work counters are deterministic given
   the seed, so any repetition's metrics describe all of them. *)
let warmup_cfg (cfg : Scenario.config) =
  { cfg with Scenario.max_elements = min cfg.Scenario.max_elements (4 * cfg.Scenario.chunk) }

let measure ~traced p cfg factory =
  ignore (Scenario.run (warmup_cfg cfg) factory);
  let k = max 1 p.reps in
  let runs =
    List.init k (fun _ ->
        (* Full collection between warmup and every rep: each rep starts
           from the same empty-minor-heap, compacted-major state, so the
           min/max envelope reflects the code under test rather than
           garbage inherited from the previous run. The GC parameters
           this ran under are stamped into the JSON ("gc" in params). *)
        Gc.full_major ();
        (if traced then Scenario.run_traced else Scenario.run) cfg factory)
  in
  let arr = Array.of_list runs in
  Array.sort
    (fun (a : Scenario.result) b -> compare a.Scenario.total_seconds b.Scenario.total_seconds)
    arr;
  let median = arr.(Array.length arr / 2) in
  (median, (k, arr.(0).Scenario.total_seconds, arr.(Array.length arr - 1).Scenario.total_seconds))

let run_one p cfg factory =
  let r, stability = measure ~traced:p.json p cfg factory in
  if p.json then runs_acc := result_json ~stability r :: !runs_acc;
  r

let emit_json p figure =
  if p.json then begin
    let runs = List.rev !runs_acc in
    runs_acc := [];
    let doc =
      Json.Obj
        [
          ("figure", Json.Str figure);
          ( "params",
            Json.Obj
              [
                ("scale", Json.Num p.scale);
                ("seed", Json.int p.seed);
                ("m", Json.int p.m);
                ("tau", Json.int p.tau);
                ("n_dynamic", Json.int p.n_dynamic);
                ("horizon", Json.int p.horizon);
                ("gc", gc_params_json ());
              ] );
          ("runs", Json.List runs);
        ]
    in
    let file = Printf.sprintf "BENCH_%s.json" figure in
    let oc = open_out file in
    Json.to_channel ~indent:2 oc doc;
    output_char oc '\n';
    close_out oc;
    Printf.eprintf "rts-bench: wrote %s (%d runs)\n%!" file (List.length runs)
  end

let run_all p cfg dim =
  List.map
    (fun (_, factory) ->
      let r = run_one p { cfg with Scenario.dim } factory in
      pf "  %a@." Scenario.pp_result r;
      r)
    (engines_for dim)

let base_cfg p =
  {
    Scenario.default with
    Scenario.seed = p.seed;
    initial_queries = p.m;
    tau = p.tau;
    (* static scenarios run until all queries are gone; the cap is a
       safety net at ~4x the expected maturity time *)
    max_elements = 4 * (p.tau / 10);
    chunk = max 64 (p.tau / 10 / 128);
  }

(* ---------------------------------------------------------------- *)
(* Figure 3: per-operation cost as a function of time (static)       *)

let fig3 p =
  List.iter
    (fun (dim, sub) ->
      header
        (Printf.sprintf
           "Figure 3%s: per-op cost over time (%dD static, m=%d, tau=%d, weighted)" sub dim p.m
           p.tau);
      let results = run_all p (base_cfg p) dim in
      pf "@.";
      print_trace_table ~rows:20 results;
      pf "@.")
    [ (1, "a"); (2, "b") ];
  emit_json p "fig3"

(* ---------------------------------------------------------------- *)
(* Figure 4: total time as a function of m (static)                  *)

let fig4 p =
  let ms =
    List.map (fun f -> max 1 (int_of_float (float_of_int p.m *. f))) [ 0.1; 0.25; 0.5; 1.; 2. ]
  in
  List.iter
    (fun (dim, sub) ->
      header (Printf.sprintf "Figure 4%s: total time vs m (%dD static, tau=%d)" sub dim p.tau);
      print_total_header "m" (List.map fst (engines_for dim));
      List.iter
        (fun m ->
          let cfg = { (base_cfg p) with Scenario.initial_queries = m } in
          let results =
            List.map (fun (_, f) -> run_one p { cfg with Scenario.dim } f) (engines_for dim)
          in
          print_total_row (string_of_int m) results)
        ms;
      pf "@.")
    [ (1, "a"); (2, "b") ];
  emit_json p "fig4"

(* ---------------------------------------------------------------- *)
(* Figure 5: total time as a function of tau (static)                *)

let fig5 p =
  let taus =
    List.map (fun f -> max 1 (int_of_float (float_of_int p.tau *. f))) [ 0.25; 0.5; 1.; 2.; 4. ]
  in
  List.iter
    (fun (dim, sub) ->
      header (Printf.sprintf "Figure 5%s: total time vs tau (%dD static, m=%d)" sub dim p.m);
      print_total_header "tau" (List.map fst (engines_for dim));
      List.iter
        (fun tau ->
          let cfg = { (base_cfg p) with Scenario.tau; max_elements = 4 * (tau / 10) } in
          let results =
            List.map (fun (_, f) -> run_one p { cfg with Scenario.dim } f) (engines_for dim)
          in
          print_total_row (string_of_int tau) results)
        taus;
      pf "@.")
    [ (1, "a"); (2, "b") ];
  emit_json p "fig5"

(* ---------------------------------------------------------------- *)
(* Figure 6: per-op cost over time (dynamic, stochastic p_ins=0.3)   *)

let dynamic_cfg p mode =
  {
    (base_cfg p) with
    Scenario.mode;
    max_elements = p.n_dynamic;
    chunk = max 64 (p.n_dynamic / 128);
  }

let fig6 p =
  List.iter
    (fun (dim, sub) ->
      header
        (Printf.sprintf
           "Figure 6%s: per-op cost over time (%dD dynamic stochastic, p_ins=0.3, m0=%d, n=%d)"
           sub dim p.m p.n_dynamic);
      let cfg = dynamic_cfg p (Scenario.Stochastic { p_ins = 0.3; horizon = p.horizon }) in
      let results = run_all p cfg dim in
      pf "@.";
      print_trace_table ~rows:20 results;
      pf "@.")
    [ (1, "a"); (2, "b") ];
  emit_json p "fig6"

(* ---------------------------------------------------------------- *)
(* Figure 7: total time as a function of p_ins                       *)

let fig7 p =
  let ps = [ 0.1; 0.2; 0.3; 0.4; 0.5 ] in
  List.iter
    (fun (dim, sub) ->
      header
        (Printf.sprintf "Figure 7%s: total time vs p_ins (%dD dynamic stochastic, n=%d)" sub dim
           p.n_dynamic);
      print_total_header "p_ins" (List.map fst (engines_for dim));
      List.iter
        (fun p_ins ->
          let cfg = dynamic_cfg p (Scenario.Stochastic { p_ins; horizon = p.horizon }) in
          let results =
            List.map (fun (_, f) -> run_one p { cfg with Scenario.dim } f) (engines_for dim)
          in
          print_total_row (Printf.sprintf "%.1f" p_ins) results)
        ps;
      pf "@.")
    [ (1, "a"); (2, "b") ];
  emit_json p "fig7"

(* ---------------------------------------------------------------- *)
(* Figure 8: per-op cost over time (dynamic, fixed load)             *)

let fig8 p =
  List.iter
    (fun (dim, sub) ->
      header
        (Printf.sprintf "Figure 8%s: per-op cost over time (%dD dynamic fixed-load, m=%d, n=%d)"
           sub dim p.m p.n_dynamic);
      let cfg = dynamic_cfg p Scenario.Fixed_load in
      let results = run_all p cfg dim in
      pf "@.";
      print_trace_table ~rows:20 results;
      pf "@.")
    [ (1, "a"); (2, "b") ];
  emit_json p "fig8"

(* ---------------------------------------------------------------- *)
(* Extra: the "any constant d" claim — d = 3 comparison              *)

let engines_3d : (string * (dim:int -> Engine.t)) list =
  [
    ("dt", fun ~dim -> Dt_engine.make ~dim);
    ("baseline", fun ~dim -> Baseline_engine.make ~dim);
    ("r-tree", fun ~dim -> Rtree_engine.make ~dim);
  ]

let dims p =
  header
    (Printf.sprintf
       "Extra: dimensionality sweep (static, m=%d, tau=%d) — Theorem 1 holds for any constant d"
       (p.m / 2) p.tau);
  let cfg = { (base_cfg p) with Scenario.initial_queries = p.m / 2 } in
  print_total_header "d" (List.map fst engines_3d);
  List.iter
    (fun dim ->
      let results = List.map (fun (_, f) -> run_one p { cfg with Scenario.dim } f) engines_3d in
      print_total_row (string_of_int dim) results)
    [ 1; 2; 3 ];
  emit_json p "dims";
  pf "@."

(* ---------------------------------------------------------------- *)
(* Extra: counting RTS (Section 4's unweighted special case)         *)

let counting p =
  (* With unit weights the expected per-timestamp gain is 1 instead of
     100, so tau shrinks by 100x to keep maturity at the same stream
     position. *)
  let tau = max 1 (p.tau / 100) in
  header
    (Printf.sprintf "Extra: counting RTS (unit weights, 1D static, m=%d, tau=%d)" p.m tau);
  let cfg =
    { (base_cfg p) with Scenario.tau; unit_weights = true; max_elements = 4 * tau * 10 }
  in
  let results = run_all p cfg 1 in
  pf "@.";
  print_trace_table ~rows:12 results;
  emit_json p "counting";
  pf "@."

(* ---------------------------------------------------------------- *)
(* Extra: robustness to non-uniform element distributions            *)

let robust p =
  header
    (Printf.sprintf
       "Extra: element-distribution robustness (1D static, m=%d, tau=%d) — beyond the paper's \
        uniform setup"
       p.m p.tau);
  print_total_header "dist" (List.map fst engines_1d);
  List.iter
    (fun (name, dist) ->
      let cfg = { (base_cfg p) with Scenario.value_dist = dist } in
      let results = List.map (fun (_, f) -> run_one p { cfg with Scenario.dim = 1 } f) engines_1d in
      print_total_row name results)
    [
      ("uniform", Generator.Uniform);
      ("zipf-0.8", Generator.Zipf 0.8);
      ("zipf-1.2", Generator.Zipf 1.2);
      ("clust-5", Generator.Clustered 5);
    ];
  emit_json p "robust";
  pf "@."

(* ---------------------------------------------------------------- *)
(* Extra: networked DT — maturity equivalence and message accounting *)
(* under injected link faults (drop/dup/reorder/delay/flaky).        *)

module Net_shadow = Rts_netcheck.Net_shadow
module Net_fault = Rts_net.Net_fault

let net p =
  header
    "Networked DT: per-query distributed tracking over faulty links — maturity must land on \
     the same element as the in-process engine";
  (* The network simulation costs O(protocol messages * retransmits), so
     the workload is scaled down; the geometry (tau/m ratio, maturity at
     ~tau/10 elements) is preserved. *)
  let m = max 20 (p.m / 100) and tau = max 120 (p.tau / 100) in
  let specs =
    [
      ("lossless", "", engines_1d);
      ("moderate", "drop=0.15,dup=0.1,reorder=0.25,delay=1-4", engines_1d);
      ( "heavy",
        "drop=0.4,dup=0.2,reorder=0.4,delay=1-6,spread=12",
        [ ("dt", fun ~dim -> Dt_engine.make ~dim) ] );
      ("degrading", "flaky=0:0.9,delay=1-3", [ ("dt", fun ~dim -> Dt_engine.make ~dim) ])
    ]
  in
  pf "@[<h>%-12s %-14s %10s %9s %9s %9s %6s %9s %9s@]@." "spec" "engine" "seconds" "msgs"
    "useful" "bound" "ok" "retx" "degraded";
  List.iter
    (fun (name, spec_str, roster) ->
      let faults =
        match Net_fault.parse spec_str with Ok s -> s | Error e -> failwith e
      in
      List.iter
        (fun (ename, factory) ->
          let shadow = ref None in
          let cfg =
            {
              (base_cfg p) with
              Scenario.dim = 1;
              initial_queries = m;
              tau;
              max_elements = 4 * (tau / 10);
              chunk = max 16 (tau / 10 / 16);
            }
          in
          let r =
            (if p.json then Scenario.run_traced else Scenario.run) cfg (fun ~dim ->
                let s =
                  Net_shadow.create
                    ~config:{ Net_shadow.default with faults; seed = p.seed }
                    ~dim ()
                in
                shadow := Some s;
                Net_shadow.wrap s (factory ~dim))
          in
          let s = Option.get !shadow in
          pf "@[<h>%-12s %-14s %10.3f %9d %9d %9d %6b %9d %9d@]@." name ename
            r.Scenario.total_seconds (Net_shadow.messages s)
            (Net_shadow.useful_messages s)
            (Net_shadow.message_bound_total s)
            (Net_shadow.bound_ok s) (Net_shadow.retransmits s)
            (Net_shadow.degraded_sites s);
          if not (Net_shadow.never_early_ok s) then
            failwith "net bench: never-early invariant violated";
          if not (Net_shadow.bound_ok s) then
            failwith "net bench: message bound exceeded without degradation";
          if p.json then begin
            let net_fields =
              [
                ("net_spec", Json.Str (Net_fault.to_string faults));
                ("net_spec_name", Json.Str name);
                ("net_sites", Json.int Net_shadow.default.Net_shadow.sites);
                ("net_seed", Json.int p.seed);
                ("net_messages", Json.int (Net_shadow.messages s));
                ("net_useful_messages", Json.int (Net_shadow.useful_messages s));
                ("net_message_bound", Json.int (Net_shadow.message_bound_total s));
                ("net_bound_ok", Json.Bool (Net_shadow.bound_ok s));
                ("net_retransmits", Json.int (Net_shadow.retransmits s));
                ("net_degraded_sites", Json.int (Net_shadow.degraded_sites s));
                ("net_never_early", Json.Bool (Net_shadow.never_early_ok s));
                ("net_ordinal_match", Json.Bool (Net_shadow.mismatches s = 0));
              ]
            in
            (* Queue the run record ourselves (this target does not go
               through [run_one]) with the net_* fields attached. *)
            let run =
              match result_json r with
              | Json.Obj fields -> Json.Obj (fields @ net_fields)
              | j -> j
            in
            runs_acc := run :: !runs_acc
          end)
        roster)
    specs;
  emit_json p "net";
  pf "@."

(* ---------------------------------------------------------------- *)
(* Extra: Bechamel steady-state per-element microbenchmark           *)

let micro p =
  let m = max 1 (p.m / 10) in
  header
    (Printf.sprintf
       "Micro: steady-state per-element cost (Bechamel OLS, m=%d alive queries, no maturity)" m);
  let mk_test name dim (factory : dim:int -> Engine.t) =
    let gen = Generator.create ~dim ~seed:p.seed () in
    let engine = factory ~dim in
    for id = 0 to m - 1 do
      engine.Engine.register (Generator.query gen ~id ~threshold:max_int)
    done;
    let elems = Array.init 4096 (fun _ -> Generator.element gen) in
    let i = ref 0 in
    Bechamel.Test.make
      ~name:(Printf.sprintf "%s/%dd" name dim)
      (Bechamel.Staged.stage (fun () ->
           incr i;
           ignore (engine.Engine.process elems.(!i land 4095))))
  in
  let tests =
    List.concat_map
      (fun dim -> List.map (fun (name, f) -> mk_test name dim f) (engines_for dim))
      [ 1; 2 ]
  in
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw =
    Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] (Test.make_grouped ~name:"micro" tests)
  in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) res [] in
  pf "@[<h>%-28s %14s %10s@]@." "engine" "ns/element" "r^2";
  List.iter
    (fun (name, o) ->
      let est = match Analyze.OLS.estimates o with Some (e :: _) -> e | _ -> nan in
      let r2 = match Analyze.OLS.r_square o with Some r -> r | None -> nan in
      pf "@[<h>%-28s %14.1f %10.4f@]@." name est r2)
    (List.sort compare rows);
  pf "@."

(* ---------------------------------------------------------------- *)
(* Perf: batched ingestion vs element-at-a-time, with deterministic  *)
(* work counters. Static fig6-scale geometry (m, tau, n as fig6; no  *)
(* terminations, static registration) so every batch size sees the   *)
(* bit-identical element stream and the counters are comparable: a   *)
(* speedup that comes with MORE node updates or heap ops is not an   *)
(* optimization, and CI gates on the counters, not the clock.        *)

let perf_counter_names =
  [ "dt_node_updates_total"; "dt_heap_ops_total"; "dt_signals_total"; "scan_updates_total" ]

(* Steady-state allocation audit — the `allocated_words_per_element`
   gauge of BENCH_perf.json. Feed a warm engine (m/10 never-maturing
   queries, like the bechamel micro harness below) a pool of
   pre-generated batches, then bracket [Gc.minor_words] around a
   multi-batch pass: [Rts_obs.Alloc] calibrates out the bracket's own
   boxed floats, so an allocation-free feed path reports exactly 0 —
   which is what tools/alloc_budgets.json gates for the DT engine, with
   no tolerance band. The untimed warmup pass first grows every reusable
   scratch buffer to its steady-state size: the audit asks "does the hot
   loop allocate per element?", not "do buffers grow once at startup?". *)
let alloc_words_per_element p (factory : dim:int -> Engine.t) b =
  let mm = max 1 (p.m / 10) in
  let gen = Generator.create ~dim:1 ~seed:p.seed () in
  let engine = factory ~dim:1 in
  for id = 0 to mm - 1 do
    engine.Engine.register (Generator.query gen ~id ~threshold:max_int)
  done;
  let pool = Array.init 64 (fun _ -> Array.init b (fun _ -> Generator.element gen)) in
  let iters = max 1 (65536 / b) in
  let i = ref 0 in
  let pass () =
    for _ = 1 to iters do
      ignore (engine.Engine.feed_batch (Array.unsafe_get pool (!i land 63)) : int list);
      incr i
    done
  in
  pass ();
  Gc.full_major ();
  Rts_obs.Alloc.words_per_item ~runs:3 ~items:(iters * b) pass

let perf p =
  header
    (Printf.sprintf
       "Perf: batched ingestion (batch 1/64/1024, 1D static, m=%d, tau=%d, n=%d) — \
        wall-clock per op + deterministic work counters"
       p.m p.tau p.n_dynamic);
  let batches = [ 1; 64; 1024 ] in
  let cfg =
    {
      Scenario.default with
      Scenario.seed = p.seed;
      dim = 1;
      initial_queries = p.m;
      tau = p.tau;
      with_terminations = false;
      mode = Scenario.Static;
      max_elements = p.n_dynamic;
      chunk = max 1024 (p.n_dynamic / 16);
    }
  in
  pf "@[<h>%-14s %6s %12s %10s %14s %12s %12s@]@." "engine" "batch" "per_op_us" "seconds"
    "node_updates" "heap_ops" "alloc_w/el";
  let runs = ref [] in
  let per_op = Hashtbl.create 16 in
  let counters = Hashtbl.create 16 in
  List.iter
    (fun (name, factory) ->
      List.iter
        (fun b ->
          let bcfg = { cfg with Scenario.batch = b } in
          let r, stability = measure ~traced:true p bcfg factory in
          (* The allocation audit rides along as a gauge in the run's
             metrics object, so validate_bench/diff_bench gate it through
             the same budget machinery as the work counters. *)
          let alloc_w = alloc_words_per_element p factory b in
          let r =
            {
              r with
              Scenario.final_metrics =
                Metrics.merge r.Scenario.final_metrics
                  (Metrics.of_assoc
                     [ ("allocated_words_per_element", Metrics.Gauge alloc_w) ]);
            }
          in
          let fm = r.Scenario.final_metrics in
          let c k = Metrics.counter_value fm k in
          let us = r.Scenario.total_seconds *. 1e6 /. float_of_int (max 1 r.Scenario.ops) in
          Hashtbl.replace per_op (name, b) us;
          Hashtbl.replace counters (name, b) (List.map (fun k -> (k, c k)) perf_counter_names);
          pf "@[<h>%-14s %6d %12.3f %10.3f %14d %12d %12.1f@]@." name b us r.Scenario.total_seconds
            (c "dt_node_updates_total") (c "dt_heap_ops_total") alloc_w;
          let run =
            match result_json ~stability r with
            | Json.Obj fields -> Json.Obj (fields @ [ ("batch", Json.int b) ])
            | j -> j
          in
          runs := run :: !runs)
        batches)
    engines_1d;
  (* The acceptance comparison: DT at batch 1024 vs batch 1. *)
  let dt1 = Hashtbl.find per_op ("dt", 1) and dt1024 = Hashtbl.find per_op ("dt", 1024) in
  let speedup = dt1 /. dt1024 in
  let counters_of b = Hashtbl.find counters ("dt", b) in
  let counter_regression =
    List.exists2
      (fun (k1, v1) (k2, v1024) ->
        assert (k1 = k2);
        k1 <> "scan_updates_total" && v1024 > v1)
      (counters_of 1) (counters_of 1024)
  in
  pf "@.DT per-op: %.3f us at batch 1 -> %.3f us at batch 1024 (%.2fx); work counters %s.@."
    dt1 dt1024 speedup
    (if counter_regression then "REGRESSED (batch does more protocol work!)" else "no increase");
  (* ---- Bechamel micro rows: descent, heap/signal path, batch sizes. *)
  let micro_rows =
    let mm = max 1 (p.m / 10) in
    let mk_engine threshold (factory : dim:int -> Engine.t) =
      let gen = Generator.create ~dim:1 ~seed:p.seed () in
      let engine = factory ~dim:1 in
      for id = 0 to mm - 1 do
        engine.Engine.register (Generator.query gen ~id ~threshold)
      done;
      (engine, gen)
    in
    let mk_batch_test name (factory : dim:int -> Engine.t) b =
      let engine, gen = mk_engine max_int factory in
      let pool = Array.init 64 (fun _ -> Array.init b (fun _ -> Generator.element gen)) in
      let i = ref 0 in
      ( b,
        Bechamel.Test.make
          ~name:(Printf.sprintf "%s/batch%d" name b)
          (Bechamel.Staged.stage (fun () ->
               incr i;
               ignore (engine.Engine.feed_batch pool.(!i land 63)))) )
    in
    let mk_descent_test () =
      (* max_int thresholds: slack deadlines sit at infinity, so the loop
         body is the pure root-to-leaf descent + counter increments. *)
      let engine, gen = mk_engine max_int (fun ~dim -> Dt_engine.make ~dim) in
      let elems = Array.init 4096 (fun _ -> Generator.element gen) in
      let i = ref 0 in
      ( 1,
        Bechamel.Test.make ~name:"dt/descent"
          (Bechamel.Staged.stage (fun () ->
               incr i;
               ignore (engine.Engine.process elems.(!i land 4095)))) )
    in
    let mk_heap_test () =
      (* Finite tau: the DT slack machinery runs — heap pops, re-pushes,
         round ends — without queries maturing inside the bechamel quota. *)
      let engine, gen = mk_engine (max 2 p.tau) (fun ~dim -> Dt_engine.make ~dim) in
      let elems = Array.init 4096 (fun _ -> Generator.element gen) in
      let i = ref 0 in
      ( 1,
        Bechamel.Test.make ~name:"dt/heap"
          (Bechamel.Staged.stage (fun () ->
               incr i;
               ignore (engine.Engine.process elems.(!i land 4095)))) )
    in
    let tests =
      (mk_descent_test () :: mk_heap_test ()
      :: List.concat_map
           (fun (name, f) -> List.map (fun b -> mk_batch_test name f b) batches)
           engines_1d)
    in
    let divisors =
      List.map (fun (b, t) -> (Bechamel.Test.Elt.name (List.hd (Bechamel.Test.elements t)), b)) tests
    in
    let open Bechamel in
    let bcfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
    let raw =
      Benchmark.all bcfg
        [ Toolkit.Instance.monotonic_clock ]
        (Test.make_grouped ~name:"perf" (List.map snd tests))
    in
    let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
    let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) res [] in
    pf "@.@[<h>%-28s %14s %10s@]@." "micro" "ns/element" "r^2";
    List.filter_map
      (fun (name, o) ->
        let est = match Analyze.OLS.estimates o with Some (e :: _) -> e | _ -> nan in
        let r2 = match Analyze.OLS.r_square o with Some r -> r | None -> nan in
        let div =
          List.fold_left
            (fun acc (n, b) -> if n = name || "perf/" ^ n = name then b else acc)
            1 divisors
        in
        let per_elem = est /. float_of_int div in
        pf "@[<h>%-28s %14.1f %10.4f@]@." name per_elem r2;
        if Float.is_finite per_elem then
          Some
            (Json.Obj
               [
                 ("name", Json.Str name);
                 ("ns_per_element", Json.Num per_elem);
                 ("r_square", Json.Num r2);
               ])
        else None)
      (List.sort compare rows)
  in
  if p.json then begin
    let doc =
      Json.Obj
        [
          ("figure", Json.Str "perf");
          ( "params",
            Json.Obj
              [
                ("scale", Json.Num p.scale);
                ("seed", Json.int p.seed);
                ("reps", Json.int p.reps);
                ("m", Json.int p.m);
                ("tau", Json.int p.tau);
                ("n", Json.int p.n_dynamic);
                ("batches", Json.List (List.map Json.int batches));
                ("gc", gc_params_json ());
              ] );
          ("runs", Json.List (List.rev !runs));
          ("micro", Json.List micro_rows);
          ("dt_speedup_1024_vs_1", Json.Num speedup);
          ("dt_counters_no_increase", Json.Bool (not counter_regression));
        ]
    in
    let oc = open_out "BENCH_perf.json" in
    Json.to_channel ~indent:2 oc doc;
    output_char oc '\n';
    close_out oc;
    Printf.eprintf "rts-bench: wrote BENCH_perf.json (%d runs)\n%!" (List.length !runs)
  end;
  pf "@."

(* ---------------------------------------------------------------- *)
(* Shard: query-sharded parallel ingestion — the scaling curve        *)
(* k = 1/2/4/8 over the fig6 stochastic workload on the batched path, *)
(* with the deterministic-merge invariant enforced in-bench: every    *)
(* sharded run's maturity log must equal the unsharded reference      *)
(* verbatim, or the target aborts. Wall clock is informational (CI    *)
(* runners are often single-core — the recorded [cores] says whether  *)
(* a speedup was even physically available); the gate is the merged   *)
(* deterministic work counters, keyed "engine/k<K>" in                *)
(* tools/shard_budgets.json.                                          *)

module Shard = Rts_shard.Shard
module Executor = Rts_shard.Executor

(* The "cores" a sweep may honestly claim: under the seq executor every
   task runs inline on the caller — one core, whatever the hardware
   offers; under domains it is the machine's available parallelism.
   Per-run core counts (the worker domains a measurement actually used)
   come from [Shard.worker_domains]. *)
let available_cores executor =
  match executor with Executor.Seq -> 1 | Executor.Domains -> Executor.parallelism_hint ()

let shard p =
  let executor = Executor.default_kind in
  let ks = [ 1; 2; 4; 8 ] in
  let batch = 1024 in
  header
    (Printf.sprintf
       "Shard: query-sharded ingestion (k=1/2/4/8, executor=%s, cores=%d, 1D stochastic \
        p_ins=0.3, m0=%d, n=%d, batch=%d) — merged maturity log must equal the unsharded \
        run verbatim"
       (Executor.kind_to_string executor)
       (available_cores executor) p.m p.n_dynamic batch);
  let cfg =
    {
      (base_cfg p) with
      Scenario.dim = 1;
      mode = Scenario.Stochastic { p_ins = 0.3; horizon = p.horizon };
      max_elements = p.n_dynamic;
      chunk = max 1024 (p.n_dynamic / 16);
      batch;
    }
  in
  let roster =
    [
      ("dt", fun ~dim -> Dt_engine.make ~dim);
      ("baseline", fun ~dim -> Baseline_engine.make ~dim);
    ]
  in
  pf "@[<h>%-14s %4s %12s %10s %9s %14s %12s@]@." "engine" "k" "per_op_us" "seconds"
    "speedup" "node_updates" "scan_updates";
  let runs = ref [] in
  let speedups = ref [] in
  List.iter
    (fun (name, base) ->
      (* Unsharded reference: the maturity-log ground truth every sharded
         run must reproduce bit-identically. One untimed run suffices —
         the log is deterministic given the config. *)
      let ref_log = (Scenario.run cfg base).Scenario.maturity_log in
      let per_op = Hashtbl.create 8 in
      List.iter
        (fun k ->
          let instances = ref [] in
          let factory ~dim =
            let t = Shard.create ~executor ~shards:k ~dim base in
            instances := t :: !instances;
            Shard.engine t
          in
          let r, stability = measure ~traced:true p cfg factory in
          if r.Scenario.maturity_log <> ref_log then
            failwith
              (Printf.sprintf
                 "shard bench: %s at k=%d: merged maturity log differs from the unsharded \
                  reference — the deterministic-merge invariant is broken"
                 name k);
          (* Per-shard engine counters from the most recent instance (work
             counters are deterministic given the seed, so any repetition's
             metrics describe all of them); then join the domains. *)
          let per_shard, workers =
            match !instances with
            | t :: _ -> (Array.to_list (Shard.per_shard_metrics t), Shard.worker_domains t)
            | [] -> ([], 1)
          in
          List.iter Shard.close !instances;
          let fm = r.Scenario.final_metrics in
          let c key = Metrics.counter_value fm key in
          let us = r.Scenario.total_seconds *. 1e6 /. float_of_int (max 1 r.Scenario.ops) in
          Hashtbl.replace per_op k us;
          let speedup = Hashtbl.find per_op 1 /. us in
          pf "@[<h>%-14s %4d %12.3f %10.3f %8.2fx %14d %12d@]@." name k us
            r.Scenario.total_seconds speedup (c "dt_node_updates_total")
            (c "scan_updates_total");
          let run =
            match result_json ~stability r with
            | Json.Obj fields ->
                (* Budgets are keyed "<base engine>/k<K>", independent of
                   the executor suffix the sharded engine name carries —
                   the work counters are executor-invariant. *)
                let fields =
                  List.map
                    (function
                      | "engine", _ -> ("engine", Json.Str name)
                      | f -> f)
                    fields
                in
                Json.Obj
                  (fields
                  @ [
                      ("engine_sharded", Json.Str r.Scenario.engine_name);
                      ("shards", Json.int k);
                      ("executor", Json.Str (Executor.kind_to_string executor));
                      (* the worker domains this measurement actually used —
                         NOT the machine's parallelism hint, which says
                         nothing about what executed the run *)
                      ("cores", Json.int workers);
                      ("per_shard_metrics", Json.List (List.map Metrics.to_json per_shard));
                    ])
            | j -> j
          in
          runs := run :: !runs)
        ks;
      speedups := (name, Hashtbl.find per_op 1 /. Hashtbl.find per_op 4) :: !speedups)
    roster;
  List.iter
    (fun (name, s) ->
      pf "@.%s: k=4 runs %.2fx %s than k=1 (executor=%s, %d core(s) available).@." name
        (if s >= 1. then s else 1. /. s)
        (if s >= 1. then "faster" else "slower")
        (Executor.kind_to_string executor)
        (available_cores executor))
    (List.rev !speedups);
  if p.json then begin
    let doc =
      Json.Obj
        [
          ("figure", Json.Str "shard");
          ( "params",
            Json.Obj
              [
                ("scale", Json.Num p.scale);
                ("seed", Json.int p.seed);
                ("reps", Json.int p.reps);
                ("m", Json.int p.m);
                ("tau", Json.int p.tau);
                ("n", Json.int p.n_dynamic);
                ("batch", Json.int batch);
                ("ks", Json.List (List.map Json.int ks));
                ("executor", Json.Str (Executor.kind_to_string executor));
                ("cores", Json.int (available_cores executor));
              ] );
          ("runs", Json.List (List.rev !runs));
          ( "shard_speedup_k4_vs_k1",
            Json.Obj (List.rev_map (fun (n, s) -> (n, Json.Num s)) !speedups) );
          (* The in-bench equality check above aborts on any mismatch, so
             reaching emission means every sharded log matched. *)
          ("shard_maturity_deterministic", Json.Bool true);
        ]
    in
    let oc = open_out "BENCH_shard.json" in
    Json.to_channel ~indent:2 oc doc;
    output_char oc '\n';
    close_out oc;
    Printf.eprintf "rts-bench: wrote BENCH_shard.json (%d runs)\n%!" (List.length !runs)
  end;
  pf "@."

(* ---------------------------------------------------------------- *)
(* Par: element-partitioned parallel ingestion — the honest scaling   *)
(* curve. Unlike the `shard` target (query partitioning: every shard  *)
(* replicates the whole stream, so wall clock cannot scale), this one *)
(* cuts the dim-0 key line into k subranges (Range_router) and routes *)
(* each element to the shard owning it, so k shards really do ~1/k of *)
(* the ingestion work each and wall-clock speedup is meaningful.      *)
(*                                                                    *)
(* Because the numbers only mean something on parallel hardware, the  *)
(* target refuses to emit BENCH_par.json unless >=2 cores are         *)
(* detected and the domains executor is available — a single-core     *)
(* "speedup" curve is noise that would poison drift tables.           *)
(* RTS_PAR_CORES overrides detection: CI uses it to exercise the      *)
(* guard, and budget regeneration uses it because the work counters   *)
(* are deterministic and executor-invariant even where the clock is   *)
(* meaningless. The correctness gate is unchanged from `shard`: every *)
(* merged maturity log must equal the unsharded reference verbatim.   *)

module Range_router = Rts_shard.Range_router

let par_detected_cores () =
  match Sys.getenv_opt "RTS_PAR_CORES" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None -> failwith "rts-bench: RTS_PAR_CORES must be an integer")
  | None -> if Executor.domains_available then Executor.parallelism_hint () else 1

let par p =
  let cores = par_detected_cores () in
  let ks = [ 1; 2; 4; 8 ] in
  let batch = 1024 in
  header
    (Printf.sprintf
       "Par: element-partitioned ingestion (k=1/2/4/8, executor=domains, cores=%d, 1D \
        stochastic p_ins=0.3, m0=%d, n=%d, batch=%d) — merged maturity log must equal the \
        unsharded run verbatim"
       cores p.m p.n_dynamic batch);
  if not Executor.domains_available then
    pf
      "par: the domains executor is unavailable on this runtime (OCaml < 5.0) — parallel \
       scaling cannot be measured; refusing to emit BENCH_par.json.@.@."
  else if cores < 2 then
    pf
      "par: %d core detected — a parallel scaling curve measured without parallel hardware \
       is noise; refusing to emit BENCH_par.json. Set RTS_PAR_CORES to override \
       detection.@.@."
      cores
  else begin
    let executor = Executor.Domains in
    let cfg =
      {
        (base_cfg p) with
        Scenario.dim = 1;
        mode = Scenario.Stochastic { p_ins = 0.3; horizon = p.horizon };
        max_elements = p.n_dynamic;
        chunk = max 1024 (p.n_dynamic / 16);
        batch;
      }
    in
    let roster =
      [
        ("dt", fun ~dim -> Dt_engine.make ~dim);
        ("baseline", fun ~dim -> Baseline_engine.make ~dim);
      ]
    in
    pf "@[<h>%-14s %4s %12s %10s %9s %14s %11s@]@." "engine" "k" "per_op_us" "seconds"
      "speedup" "node_updates" "forwarded";
    let runs = ref [] in
    let speedups = ref [] in
    List.iter
      (fun (name, base) ->
        let ref_log = (Scenario.run cfg base).Scenario.maturity_log in
        let per_op = Hashtbl.create 8 in
        List.iter
          (fun k ->
            (* evenly spaced cuts over the generator's key domain: the
               element distribution is uniform on dim 0, so uniform cuts
               give each shard ~n/k of the stream *)
            let cuts = Range_router.uniform_cuts ~shards:k ~lo:0.0 ~hi:Generator.domain in
            let instances = ref [] in
            let factory ~dim =
              let t =
                Shard.create ~executor ~partition:(Shard.Elements cuts) ~shards:k ~dim base
              in
              instances := t :: !instances;
              Shard.engine t
            in
            let r, stability = measure ~traced:true p cfg factory in
            if r.Scenario.maturity_log <> ref_log then
              failwith
                (Printf.sprintf
                   "par bench: %s at k=%d: merged maturity log differs from the unsharded \
                    reference — the element-routing invariant is broken"
                   name k);
            let per_shard, workers =
              match !instances with
              | t :: _ -> (Array.to_list (Shard.per_shard_metrics t), Shard.worker_domains t)
              | [] -> ([], 1)
            in
            List.iter Shard.close !instances;
            let fm = r.Scenario.final_metrics in
            let c key = Metrics.counter_value fm key in
            let us = r.Scenario.total_seconds *. 1e6 /. float_of_int (max 1 r.Scenario.ops) in
            Hashtbl.replace per_op k us;
            let speedup = Hashtbl.find per_op 1 /. us in
            pf "@[<h>%-14s %4d %12.3f %10.3f %8.2fx %14d %11d@]@." name k us
              r.Scenario.total_seconds speedup (c "dt_node_updates_total")
              (c "shard_forwarded_total");
            let run =
              match result_json ~stability r with
              | Json.Obj fields ->
                  (* budgets are keyed "<base engine>/k<K>", independent of
                     the /range/domains suffixes of the sharded name *)
                  let fields =
                    List.map
                      (function
                        | "engine", _ -> ("engine", Json.Str name)
                        | f -> f)
                      fields
                  in
                  Json.Obj
                    (fields
                    @ [
                        ("engine_sharded", Json.Str r.Scenario.engine_name);
                        ("shards", Json.int k);
                        ("executor", Json.Str (Executor.kind_to_string executor));
                        ("partition", Json.Str "elements");
                        ("cores", Json.int workers);
                        ("per_shard_metrics", Json.List (List.map Metrics.to_json per_shard));
                      ])
              | j -> j
            in
            runs := run :: !runs)
          ks;
        speedups := (name, Hashtbl.find per_op 1 /. Hashtbl.find per_op 8) :: !speedups)
      roster;
    List.iter
      (fun (name, s) ->
        pf "@.%s: k=8 runs %.2fx %s than k=1 (element-partitioned, %d core(s) detected).@."
          name
          (if s >= 1. then s else 1. /. s)
          (if s >= 1. then "faster" else "slower")
          cores)
      (List.rev !speedups);
    if p.json then begin
      let doc =
        Json.Obj
          [
            ("figure", Json.Str "par");
            ( "params",
              Json.Obj
                [
                  ("scale", Json.Num p.scale);
                  ("seed", Json.int p.seed);
                  ("reps", Json.int p.reps);
                  ("m", Json.int p.m);
                  ("tau", Json.int p.tau);
                  ("n", Json.int p.n_dynamic);
                  ("batch", Json.int batch);
                  ("ks", Json.List (List.map Json.int ks));
                  ("executor", Json.Str (Executor.kind_to_string executor));
                  ("partition", Json.Str "elements");
                  ("cores", Json.int cores);
                ] );
            ("runs", Json.List (List.rev !runs));
            ( "par_speedup_k8_vs_k1",
              Json.Obj (List.rev_map (fun (n, s) -> (n, Json.Num s)) !speedups) );
            ("par_maturity_deterministic", Json.Bool true);
          ]
      in
      let oc = open_out "BENCH_par.json" in
      Json.to_channel ~indent:2 oc doc;
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "rts-bench: wrote BENCH_par.json (%d runs)\n%!" (List.length !runs)
    end;
    pf "@."
  end

(* ---------------------------------------------------------------- *)
(* Extra: ablation — DT slack rounds vs eager signalling, plus the   *)
(* internal telemetry behind the O(h log tau) analysis.              *)

let ablation p =
  header "Ablation: DT slack rounds vs eager per-change signalling (1D static)";
  let cfg = base_cfg p in
  let run name factory =
    let engine_ref = ref None in
    let r =
      run_one p cfg (fun ~dim ->
          let t = factory ~dim in
          engine_ref := Some t;
          Dt_engine.engine t)
    in
    let t = Option.get !engine_ref in
    let st = Dt_engine.stats t in
    pf
      "@[<h>%-10s total=%.3fs signals=%d round-ends=%d heap-ops=%d counter-updates=%d \
       rebuilds=%d@]@."
      name r.Scenario.total_seconds st.Endpoint_tree.signals st.round_ends st.heap_ops
      st.node_updates (Dt_engine.rebuild_count t);
    (r, st)
  in
  let r_dt, st_dt = run "dt" (fun ~dim -> Dt_engine.create ~dim ()) in
  let r_eager, st_eager = run "dt-eager" (fun ~dim -> Dt_engine.create ~eager:true ~dim ()) in
  pf "@.";
  pf "Slack rounds cut signals by %.1fx and total time by %.2fx.@."
    (float_of_int st_eager.Endpoint_tree.signals
    /. float_of_int (max 1 st_dt.Endpoint_tree.signals))
    (r_eager.Scenario.total_seconds /. r_dt.Scenario.total_seconds);
  pf
    "The O(h log tau) analysis predicts ~m*h*log2(tau) = %.2e signal budget; measured %d \
     (weighted workload, m=%d, tau=%d).@."
    (let log2 x = log (float_of_int x) /. log 2. in
     float_of_int p.m *. 2. *. (log2 (2 * p.m) +. 1.) *. (log2 p.tau +. 2.))
    st_dt.Endpoint_tree.signals p.m p.tau;
  emit_json p "ablation";
  pf "@."

(* ---------------------------------------------------------------- *)
(* Extra: the approximate tier — sketch footprint, certified error    *)
(* vs a brute-force exact scan, per-op latency of the never-early     *)
(* engines, and top-n search parity with the full sort. Everything    *)
(* emitted is deterministic per (scale, seed): the sketches use no    *)
(* hash families and the workload generator is a pinned PRNG, so      *)
(* tools/approx_budgets.json gates the error/memory gauges with no    *)
(* tolerance band.                                                    *)

module Approx = Rts_approx

(* Probe the two summaries directly against a reference element log:
   certified-bound violations (must be 0), the widest certified interval
   and the largest |midpoint - exact| over [probes] ranges drawn from the
   query generator. O(probes * n) brute-force scans, run once. *)
let approx_probe_gauges p ~probes =
  let n = 4 * (p.tau / 10) in
  let gen = Generator.create ~dim:1 ~seed:p.seed () in
  let sums =
    [
      ("crprecis", Approx.Crprecis.summary (Approx.Crprecis.create ()));
      ("heavy", Approx.Heavy.summary (Approx.Heavy.create ()));
    ]
  in
  let log = Array.init n (fun _ -> Generator.element gen) in
  Array.iter
    (fun (e : Types.elem) ->
      List.iter (fun (_, s) -> s.Approx.Summary.insert e.Types.value.(0) e.Types.weight) sums)
    log;
  let ranges =
    List.init probes (fun i ->
        let q = Generator.query gen ~id:i ~threshold:1 in
        (q.Types.rect.Types.lo.(0), q.Types.rect.Types.hi.(0)))
  in
  List.map
    (fun (name, s) ->
      let violations = ref 0 and max_width = ref 0 and max_err = ref 0 in
      List.iter
        (fun (lo, hi) ->
          let exact =
            Array.fold_left
              (fun acc (e : Types.elem) ->
                let v = e.Types.value.(0) in
                if lo <= v && v < hi then acc + e.Types.weight else acc)
              0 log
          in
          let est = s.Approx.Summary.range ~lo ~hi in
          if not (est.Approx.Summary.lower <= exact && exact <= est.Approx.Summary.upper) then
            incr violations;
          max_width := max !max_width (est.Approx.Summary.upper - est.Approx.Summary.lower);
          let mid = (est.Approx.Summary.lower + est.Approx.Summary.upper) / 2 in
          max_err := max !max_err (abs (mid - exact)))
        ranges;
      ( name,
        Metrics.of_assoc
          [
            ("approx_bound_violations", Metrics.Gauge (float_of_int !violations));
            ("approx_max_width", Metrics.Gauge (float_of_int !max_width));
            ("approx_max_observed_error", Metrics.Gauge (float_of_int !max_err));
          ] ))
    sums

let approx p =
  let probes = 64 in
  header
    (Printf.sprintf
       "Approx: never-early sketch engines vs exact (1D static, m=%d, tau=%d) — sketch words, \
        certified error over %d probe ranges, per-op latency, top-n search parity"
       p.m p.tau probes);
  let cfg = { (base_cfg p) with Scenario.dim = 1 } in
  (* The exact reference: first maturity timestamp per query id. *)
  let exact = Scenario.run cfg (fun ~dim -> Baseline_engine.make ~dim) in
  let exact_ts = Hashtbl.create 1024 in
  List.iter
    (fun (ts, id) -> if not (Hashtbl.mem exact_ts id) then Hashtbl.add exact_ts id ts)
    exact.Scenario.maturity_log;
  let probe_gauges = approx_probe_gauges p ~probes in
  let roster : (string * (dim:int -> Engine.t)) list =
    [
      ("crprecis", fun ~dim:_ -> Approx.Crprecis_engine.make ());
      ("heavy", fun ~dim:_ -> Approx.Heavy_engine.make ());
      ("dt", fun ~dim -> Dt_engine.make ~dim);
    ]
  in
  let never_early = ref true in
  let runs = ref [] in
  pf "@[<h>%-10s %12s %10s %9s %9s %14s %12s %12s@]@." "engine" "per_op_us" "seconds"
    "matured" "late" "sketch_words" "max_width" "max_err";
  List.iter
    (fun (name, factory) ->
      let r, stability = measure ~traced:true p cfg factory in
      (* Every maturity the engine reports must be one the exact run also
         reports, no earlier than the exact timestamp (late is fine — it
         is the price of certified lower bounds). *)
      let late = ref 0 in
      List.iter
        (fun (ts, id) ->
          match Hashtbl.find_opt exact_ts id with
          | Some ts' when ts' <= ts -> if ts' < ts then incr late
          | _ -> never_early := false)
        r.Scenario.maturity_log;
      let r =
        match List.assoc_opt name probe_gauges with
        | Some g -> { r with Scenario.final_metrics = Metrics.merge r.Scenario.final_metrics g }
        | None -> r
      in
      let fm = r.Scenario.final_metrics in
      let gauge k =
        match Metrics.get fm k with Some (Metrics.Gauge v) -> int_of_float v | _ -> 0
      in
      pf "@[<h>%-10s %12.3f %10.3f %9d %9d %14d %12d %12d@]@." name
        (r.Scenario.total_seconds *. 1e6 /. float_of_int (max 1 r.Scenario.ops))
        r.Scenario.total_seconds r.Scenario.matured !late (gauge "approx_sketch_words")
        (gauge "approx_max_width")
        (gauge "approx_max_observed_error");
      if p.json then runs := result_json ~stability r :: !runs)
    roster;
  (* Top-n parity: the binary threshold search against the full sort on a
     live engine mid-stream, at several n. *)
  let topn_matches =
    let e = Approx.Topn.engine ~dim:1 in
    let gen = Generator.create ~dim:1 ~seed:p.seed () in
    for id = 0 to max 10 (p.m / 10) - 1 do
      e.Engine.register (Generator.query gen ~id ~threshold:(max 2 p.tau))
    done;
    for _ = 1 to 4 * (p.tau / 10) do
      ignore (e.Engine.process (Generator.element gen) : int list)
    done;
    let sorted_prefix n =
      e.Engine.alive_snapshot ()
      |> List.map (fun ((q : Types.query), w) ->
             { Approx.Topn.id = q.Types.id; slack = q.Types.threshold - w;
               threshold = q.Types.threshold })
      |> List.sort (fun (a : Approx.Topn.entry) b ->
             if a.Approx.Topn.slack <> b.Approx.Topn.slack then
               compare a.Approx.Topn.slack b.Approx.Topn.slack
             else compare a.Approx.Topn.id b.Approx.Topn.id)
      |> List.filteri (fun k _ -> k < n)
    in
    List.for_all (fun n -> Approx.Topn.closest e ~n = sorted_prefix n) [ 0; 1; 10; 100 ]
  in
  pf "@.never-early vs exact baseline: %b; top-n search = sorted prefix: %b@." !never_early
    topn_matches;
  if not !never_early then failwith "approx bench: an engine matured a query EARLY";
  if not topn_matches then failwith "approx bench: top-n search diverged from the full sort";
  if p.json then begin
    let doc =
      Json.Obj
        [
          ("figure", Json.Str "approx");
          ( "params",
            Json.Obj
              [
                ("scale", Json.Num p.scale);
                ("seed", Json.int p.seed);
                ("reps", Json.int p.reps);
                ("m", Json.int p.m);
                ("tau", Json.int p.tau);
                ("probes", Json.int probes);
                ("gc", gc_params_json ());
              ] );
          ("runs", Json.List (List.rev !runs));
          ("approx_never_early", Json.Bool !never_early);
          ("topn_matches_sort", Json.Bool topn_matches);
        ]
    in
    let oc = open_out "BENCH_approx.json" in
    Json.to_channel ~indent:2 oc doc;
    output_char oc '\n';
    close_out oc;
    Printf.eprintf "rts-bench: wrote BENCH_approx.json (%d runs)\n%!" (List.length !runs)
  end;
  pf "@."

(* ---------------------------------------------------------------- *)
(* Command line                                                      *)

open Cmdliner

let scale_arg =
  let doc = "Multiply every workload parameter (m, tau, n) by this factor. 1.0 = paper/100." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"FACTOR" ~doc)

let seed_arg =
  let doc = "PRNG seed for the workload." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let json_arg =
  let doc =
    "Also write a machine-readable BENCH_<figure>.json next to the textual output: engine, \
     workload parameters, wall-clock time, per-op cost trajectory and final metric totals \
     (including DT message counts against the O(h log tau) budget)."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let reps_arg =
  let doc =
    "Timed repetitions per configuration; the median run is reported and min/max land in \
     the JSON. Warmup (a truncated run) always precedes the timed repetitions."
  in
  Arg.(value & opt int 3 & info [ "reps" ] ~docv:"K" ~doc)

let with_params f scale seed json reps = f (params_of ~scale ~seed ~json ~reps)

let cmd name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(const (with_params f) $ scale_arg $ seed_arg $ json_arg $ reps_arg)

(* The implementation behind every registry target. The target list
   itself — names, docs, which figures are JSON-emitting, how budgets
   are keyed — lives in {!Bench_targets}, shared with validate_bench, so
   a target cannot exist here without the validator knowing it (and vice
   versa): [check_coverage] fails loudly at startup on any drift. *)
let implementations : (string * (params -> unit)) list =
  [
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("dims", dims);
    ("counting", counting);
    ("robust", robust);
    ("net", net);
    ("micro", micro);
    ("perf", perf);
    ("shard", shard);
    ("par", par);
    ("ablation", ablation);
    ("approx", approx);
  ]

let check_coverage () =
  let impl = List.map fst implementations in
  List.iter
    (fun name ->
      if not (List.mem name impl) then
        failwith
          (Printf.sprintf "rts-bench: registry target %S has no implementation" name))
    Bench_targets.names;
  List.iter
    (fun name ->
      if Bench_targets.find name = None then
        failwith
          (Printf.sprintf
             "rts-bench: implementation %S is not in the Bench_targets registry" name))
    impl

let all_figs p =
  List.iter (fun (t : Bench_targets.t) -> List.assoc t.name implementations p) Bench_targets.all

let default_term =
  Term.(const (with_params all_figs) $ scale_arg $ seed_arg $ json_arg $ reps_arg)

let () =
  check_coverage ();
  let info =
    Cmd.info "rts-bench"
      ~doc:
        "Regenerate the evaluation of 'Range Thresholding on Streams' (SIGMOD'16): one target \
         per paper figure, plus a Bechamel microbenchmark and an ablation study."
  in
  let cmds =
    List.map
      (fun (t : Bench_targets.t) -> cmd t.name t.doc (List.assoc t.name implementations))
      Bench_targets.all
    @ [ cmd "all" "Everything (default)" all_figs ]
  in
  exit (Cmd.eval (Cmd.group ~default:default_term info cmds))
